"""Extension experiments (the paper's promised full-version results).

* ``ext01`` — Two-Phase Locking vs the paper's three algorithms: the
  response/throughput spectrum from fully restrictive serialization to
  link-based concurrency.
* ``ext02`` — LRU buffer-pool sweep: maximum throughput vs buffer
  frames, locating the knee at "top levels cached".
* ``ext03`` — operation-mix sensitivity: how each algorithm's maximum
  throughput responds to the search fraction (the lock-coupling
  algorithms live and die by the writer share; the Link-type algorithm
  barely notices).
* ``ext04`` — closed-system throughput vs multiprogramming level: the
  paper's Section 1 scenario ("multiprocessing level around 100") run
  directly — lock-coupling plateaus at its Theorem 2 limit while the
  Link-type algorithm keeps scaling.
* ``ext05`` — access skew: an 80/20-style hotspot concentrates traffic
  on one subtree; the per-level thinning assumption (Proposition 2)
  weakens, hitting the lock-coupling algorithms hardest.
"""

from __future__ import annotations

import math

from repro.errors import ConvergenceError
from repro.experiments.common import (
    ExperimentTable,
    sweep_simulated_responses,
)
from repro.model import (
    analyze_link,
    analyze_lock_coupling,
    analyze_optimistic,
    analyze_two_phase,
    max_throughput,
    paper_default_config,
)
from repro.model.buffering import buffered_config, pages_for_top_levels
from repro.model.params import OperationMix
from repro.parallel import SimTask, run_batch
from repro.simulator.config import SimulationConfig

_ANALYZERS = (
    ("two_phase", analyze_two_phase),
    ("naive", analyze_lock_coupling),
    ("optimistic", analyze_optimistic),
    ("link", analyze_link),
)


def ext01(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Two-Phase Locking in the Figure 12 comparison."""
    config = paper_default_config()
    columns = ["arrival_rate"] + [f"{name}_insert"
                                  for name, _ in _ANALYZERS]
    if simulate:
        columns.append("sim_two_phase_insert")
    table = ExperimentTable(
        "ext01",
        "Insert response with Two-Phase Locking added to the comparison",
        "Extension (full version): Two-Phase Locking", columns)
    rates = (0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.3, 1.0)
    sim_means = None
    if simulate:
        base = SimulationConfig(algorithm="two-phase-locking")
        sim_means = sweep_simulated_responses(base, rates, scale)
    for index, rate in enumerate(rates):
        row = [rate]
        for _name, analyzer in _ANALYZERS:
            value = analyzer(config, rate).response("insert")
            row.append(math.inf if math.isinf(value) else round(value, 3))
        if sim_means is not None:
            means = sim_means[index]
            row.append(math.inf if means["_overflow_fraction"] == 1.0
                       else round(means["insert"], 3))
        table.add(*row)
    peaks = {name: round(max_throughput(analyzer, config), 4)
             for name, analyzer in _ANALYZERS}
    table.note(f"maximum throughputs: {peaks} — strict 2PL costs an order "
               "of magnitude against even Naive Lock-coupling")
    return table


def ext02(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Maximum throughput vs LRU buffer-pool size."""
    del scale, simulate  # analytical sweep
    config = paper_default_config(disk_cost=10.0)
    table = ExperimentTable(
        "ext02",
        "Maximum throughput vs LRU buffer frames (raw disk cost 10)",
        "Extension (full version): LRU buffering",
        ["buffer_frames", "naive_max_throughput",
         "optimistic_max_throughput"])
    top2 = pages_for_top_levels(config.shape, 2)
    for frames in (0.0, 2.0, round(top2, 1), 20.0, 60.0, 200.0, 600.0,
                   6000.0):
        buffered = buffered_config(config, frames)
        try:
            naive = round(max_throughput(analyze_lock_coupling,
                                         buffered), 4)
        except ConvergenceError:  # pragma: no cover - bounded loads
            naive = math.inf
        optimistic = round(max_throughput(analyze_optimistic, buffered), 4)
        table.add(frames, naive, optimistic)
    table.note(f"~{top2:.0f} frames cache the top two levels — the knee "
               "of the curve and the paper's fixed setting")
    return table


def ext03(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Maximum throughput vs search fraction of the mix.

    Updates keep the paper's 5:2 insert:delete split; ``q_s`` sweeps
    from update-heavy to read-mostly.
    """
    del scale, simulate  # analytical sweep
    table = ExperimentTable(
        "ext03",
        "Maximum throughput vs search fraction q_s (updates split 5:2)",
        "Extension: operation-mix sensitivity",
        ["q_search"] + [f"{name}_max_throughput"
                        for name, _ in _ANALYZERS])
    for q_search in (0.05, 0.2, 0.3, 0.5, 0.7, 0.9, 0.95):
        q_insert = (1.0 - q_search) * 5.0 / 7.0
        mix = OperationMix(q_search=q_search, q_insert=q_insert,
                           q_delete=1.0 - q_search - q_insert)
        config = paper_default_config(mix=mix)
        row = [q_search]
        for _name, analyzer in _ANALYZERS:
            row.append(round(max_throughput(analyzer, config), 4))
        table.add(*row)
    table.note("every algorithm is writer-bound, so capacity scales "
               "roughly with 1/(1-q_s); the ordering and relative "
               "margins are mix-invariant")
    return table


#: Multiprogramming levels for the closed-system sweep.
_MPL_LEVELS = (1, 2, 5, 10, 25, 50, 100)
_CLOSED_ALGORITHMS = ("naive-lock-coupling", "optimistic-descent",
                      "link-type")


def ext04(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Closed-system throughput and search response vs MPL, with the
    interactive response-time-law prediction alongside the simulation."""
    from repro.model.closed import closed_system_prediction
    from repro.model.validation import measured_model_config
    table = ExperimentTable(
        "ext04",
        "Closed-system throughput / search response vs multiprogramming "
        "level",
        "Extension: closed system (Section 1 scenario)",
        ["mpl"] + [f"{name.split('-')[0]}_throughput"
                   for name in _CLOSED_ALGORITHMS]
                + [f"{name.split('-')[0]}_search_response"
                   for name in _CLOSED_ALGORITHMS]
                + ["naive_model_throughput"])
    del simulate  # inherently simulated
    n_ops = max(300, int(1_500 * scale))

    def sim_config(algorithm: str, mpl: int) -> SimulationConfig:
        # The warm-up must let the closed system's backlog reach steady
        # state, which takes longer at higher populations; otherwise the
        # draining backlog inflates the measured throughput.
        warmup = max(50, n_ops // 10, 5 * mpl)
        return SimulationConfig(
            algorithm=algorithm, arrival_rate=1.0, n_items=8_000,
            n_operations=n_ops, warmup_operations=warmup, seed=17)

    naive_model = measured_model_config(
        sim_config(_CLOSED_ALGORITHMS[0], 1))
    # The whole (mpl, algorithm) grid fans out as one batch of closed
    # tasks; run_batch preserves submission order.
    tasks = [SimTask(sim_config(algorithm, mpl), kind="closed", mpl=mpl)
             for mpl in _MPL_LEVELS for algorithm in _CLOSED_ALGORITHMS]
    flat = iter(run_batch(tasks))
    for mpl in _MPL_LEVELS:
        throughputs = []
        responses = []
        for _algorithm in _CLOSED_ALGORITHMS:
            result = next(flat)
            throughputs.append(round(result.throughput, 4))
            responses.append(round(result.mean_response["search"], 3))
        predicted = closed_system_prediction(analyze_lock_coupling,
                                             naive_model, mpl)
        table.add(mpl, *throughputs, *responses,
                  round(predicted.throughput, 4))
    table.note("naive lock-coupling plateaus once the root saturates "
               "(response then grows linearly with MPL); the link-type "
               "algorithm scales on toward the service limit")
    table.note("naive_model_throughput is the interactive "
               "response-time-law fixed point over the open analysis "
               "(repro.model.closed)")
    return table


def ext05(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Simulated insert response vs hotspot skew (hot 20% of keys)."""
    del simulate  # inherently simulated
    table = ExperimentTable(
        "ext05",
        "Insert response vs access skew (hot 20% of the key space)",
        "Extension: hotspot workload",
        ["hot_probability", "naive_insert", "link_insert",
         "naive_rho_root"])
    # The skew signal needs enough operations to resolve; keep a higher
    # floor than the other sweeps.
    n_ops = max(800, int(1_500 * scale))
    skews = (0.2, 0.5, 0.8, 0.95)
    algorithms = ("naive-lock-coupling", "link-type")
    tasks = [
        SimTask(SimulationConfig(
            algorithm=algorithm, arrival_rate=0.35, n_items=8_000,
            n_operations=n_ops, warmup_operations=max(20, n_ops // 10),
            seed=23, key_distribution="hotspot",
            hot_fraction=0.2, hot_probability=hot_probability))
        for hot_probability in skews for algorithm in algorithms]
    flat = iter(run_batch(tasks))
    for hot_probability in skews:
        row = [hot_probability]
        rho = math.nan
        for algorithm in algorithms:
            result = next(flat)
            row.append(math.inf if result.overflowed
                       else round(result.mean_response["insert"], 3))
            if algorithm == "naive-lock-coupling":
                rho = round(result.root_writer_utilization, 4)
        row.append(rho)
        table.add(*row)
    table.note("hot_probability 0.2 over a 0.2 fraction is uniform; "
               "rising skew funnels descents through one subtree, "
               "raising lower-level contention under lock-coupling")
    return table
