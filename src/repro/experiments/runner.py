"""Command-line entry point (``btree-perf``).

Usage::

    btree-perf list
    btree-perf list-algorithms
    btree-perf list-workloads
    btree-perf run fig03 [--scale 0.2] [--no-sim] [--csv] [--jobs 4]
    btree-perf all [--scale 0.1] [--jobs 4]
    btree-perf figures --all [--scale 0.1] [--jobs 4] [--out figures]
    btree-perf figures fig03 fig10 --scale 0.05 --resume
    btree-perf simulate --algorithm link-type --rate 0.2 \\
        --metrics-out run.ndjson --progress
    btree-perf list-cluster-policies
    btree-perf cluster --shards 8 --replicas 2 --chaos 2 \\
        --policy resilient --seed 7

``figures`` is the one-command full reproduction: it regenerates every
requested figure (``--all`` or explicit ids), renders SVG (+PNG when
matplotlib is installed) with the publication theme plus an NDJSON
data sidecar per figure, and writes a validation report (markdown +
JSON) whose model-vs-simulation error tables are checked against the
registry thresholds — a breach (or a failed in-text claim) exits
nonzero, which is the CI gate.  The run checkpoints per figure;
re-invoking with ``--resume`` serves completed figures from the
journal.  See ``docs/reproduction.md``.

``list-algorithms`` prints the :mod:`repro.algorithms` registry — every
registered algorithm with its display label, whether it has an
analytical model, whether replication batches may take the vectorized
batch path (``vector`` vs ``scalar``), and its capability flags
(``docs/architecture.md`` shows how to register a new one).

Simulation runs are memoized in an on-disk cache (``$REPRO_CACHE_DIR``
or ``~/.cache/repro``), so re-running an experiment at the same scale
reuses every already-computed point; ``--no-cache`` disables the cache
and ``--clear-cache`` empties it first.  ``--jobs N`` fans a sweep's
independent simulation runs out over ``N`` worker processes (the
default, 1, is serial); results are bit-identical either way.
``--batch N`` additionally groups up to ``N`` replication seeds per
scheduled unit through the lane-multiplexed batch driver when the
algorithm is vector-capable — again bit-identical, with per-seed cache
keys unchanged.  See ``docs/performance.md``.

``--progress`` streams one line per completed run to stderr;
``simulate`` runs one configuration under full telemetry and
``--metrics-out PATH`` exports it as NDJSON (``docs/observability.md``).

``--task-timeout``, ``--max-retries``, ``--checkpoint`` and ``--resume``
switch sweeps into resilient execution (retries with backoff,
quarantine instead of abort, checkpoint/resume); see
``docs/robustness.md``.

``cluster`` runs one sharded-cluster simulation (:mod:`repro.cluster`)
next to its analytical prediction; chaos comes from ``--faults``/
``$REPRO_FAULTS`` (simulation-time fault specs) or ``--chaos N`` (the
deterministic ext08 schedule with N waves), and
``list-cluster-policies`` enumerates the named defense presets.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.algorithms import algorithm_names, all_algorithms, names
from repro.errors import ConfigurationError, ReproError
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.report import format_table, to_csv
from repro.parallel import ResultCache, execution


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="btree-perf",
        description="Regenerate the figures of Johnson & Shasha (PODS 1990)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments")
    sub.add_parser("list-algorithms",
                   help="list the registered algorithms and capabilities")
    sub.add_parser("list-workloads",
                   help="list the registered workload components "
                        "(arrival processes and key distributions)")
    sub.add_parser("claims", help="evaluate the paper's in-text claims")
    sub.add_parser("list-cluster-policies",
                   help="list the named cluster defense presets "
                        "(retry / hedge / breaker bundles)")

    cluster = sub.add_parser(
        "cluster",
        help="run one sharded-cluster simulation under chaos, next to "
             "the analytical router+shard composition")
    cluster.add_argument("--shards", type=int, default=8,
                         help="number of range-partitioned shards "
                              "(default 8)")
    cluster.add_argument("--replicas", type=int, default=2,
                         help="servers per shard: 1 primary + R-1 read "
                              "replicas (default 2)")
    cluster.add_argument("--algorithm", default=names.NAIVE_LOCK_COUPLING,
                         choices=sorted(algorithm_names()),
                         help="single-tree algorithm supplying the "
                              "per-shard service demands (needs an "
                              "analytical model)")
    cluster.add_argument("--policy", default="resilient",
                         help="defense preset (see "
                              "list-cluster-policies; default "
                              "resilient)")
    cluster.add_argument("--rate", type=float, default=None,
                         help="total cluster arrival rate; default "
                              "derives it from --rho")
    cluster.add_argument("--rho", type=float, default=0.25,
                         help="target per-shard primary utilization "
                              "when --rate is omitted (default 0.25)")
    cluster.add_argument("--horizon", type=float, default=2_000.0,
                         help="arrival horizon in simulated time units "
                              "(default 2000)")
    cluster.add_argument("--seed", type=int, default=1,
                         help="simulation seed (default 1)")
    cluster.add_argument("--faults", default=None, metavar="SPEC",
                         help="simulation-time fault plan, e.g. "
                              "'shard-crash@2~200!300%%1.6;"
                              "slow-shard@0~300!600%%6' "
                              "(default: $REPRO_FAULTS)")
    cluster.add_argument("--chaos", type=_non_negative_int, default=None,
                         metavar="WAVES",
                         help="inject the deterministic ext08 chaos "
                              "schedule with WAVES waves instead of "
                              "--faults")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="e.g. fig03")
    _common_run_flags(run)

    everything = sub.add_parser("all", help="run every experiment")
    _common_run_flags(everything)

    figures = sub.add_parser(
        "figures",
        help="one-command reproduction: render figures + validation "
             "report (docs/reproduction.md)")
    figures.add_argument("figure_ids", nargs="*", metavar="FIGURE",
                         help="figure ids to generate (e.g. fig03 ext04); "
                              "empty with --all for the full set")
    figures.add_argument("--all", action="store_true", dest="all_figures",
                         help="generate every registered figure")
    figures.add_argument("--out", default="figures", metavar="DIR",
                         help="output directory (default: figures/)")
    figures.add_argument("--formats", default=None, metavar="LIST",
                         help="comma-separated image formats (svg,png); "
                              "default: svg plus png when matplotlib is "
                              "installed; ndjson sidecars are always "
                              "written")
    figures.add_argument("--threshold-scale", type=float, default=1.0,
                         metavar="F",
                         help="multiply every validation threshold by F "
                              "(tighten < 1, loosen > 1; default 1.0)")
    figures.add_argument("--scale", type=float, default=1.0,
                         help="simulation effort scale (1.0 = paper "
                              "scale)")
    figures.add_argument("--no-sim", action="store_true",
                         help="analytical series only (skip the "
                              "simulator everywhere)")
    figures.add_argument("--no-claims", action="store_true",
                         help="leave the paper's in-text claims out of "
                              "the validation report")
    figures.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for each figure's "
                              "simulation sweep (default 1: serial)")
    figures.add_argument("--batch", type=_batch_width, default=None,
                         metavar="N|auto",
                         help="replication batch width, or 'auto' for "
                              "the calibrated width (vector-capable "
                              "algorithms; results identical)")
    figures.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk simulation result "
                              "cache")
    figures.add_argument("--clear-cache", action="store_true",
                         help="empty the simulation result cache first")
    figures.add_argument("--progress", action="store_true",
                         help="stream per-figure and per-run progress "
                              "lines to stderr")
    figures.add_argument("--resume", action="store_true",
                         help="resume an interrupted run: completed "
                              "figures are served from the journal in "
                              "--out (and interrupted sweeps from the "
                              "result cache)")
    figures.add_argument("--journal", default=None, metavar="PATH",
                         help="figure checkpoint journal (default: "
                              "<out>/figures-journal.ndjson)")
    figures.add_argument("--task-timeout", type=_positive_seconds,
                         default=None, metavar="SECONDS",
                         help="wall-clock deadline per simulation task "
                              "(stalled tasks are retried, then "
                              "quarantined)")
    figures.add_argument("--max-retries", type=_non_negative_int,
                         default=None, metavar="N",
                         help="retries per failed simulation task")

    simulate = sub.add_parser(
        "simulate",
        help="run one simulator configuration with full telemetry")
    simulate.add_argument("--algorithm", default=names.LINK_TYPE,
                          choices=sorted(algorithm_names()))
    simulate.add_argument("--rate", type=float, default=0.2,
                          help="Poisson arrival rate (default 0.2)")
    simulate.add_argument("--seed", type=int, default=0,
                          help="base random seed (default 0)")
    simulate.add_argument("--seeds", type=int, default=1, metavar="N",
                          help="replication seeds seed..seed+N-1 "
                               "(default 1)")
    simulate.add_argument("--scale", type=float, default=1.0,
                          help="simulation effort scale (1.0 = paper "
                               "scale)")
    simulate.add_argument("--sample-interval", type=float, default=1.0,
                          metavar="T",
                          help="simulated time between telemetry samples "
                               "(default 1.0)")
    simulate.add_argument("--metrics-out", metavar="PATH",
                          help="write the merged run telemetry to PATH "
                               "as NDJSON")
    simulate.add_argument("--progress", action="store_true",
                          help="stream one line per completed run to "
                               "stderr")
    simulate.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes for the replication "
                               "seeds (default 1: serial)")
    simulate.add_argument("--batch", type=_batch_width, default=None,
                          metavar="N|auto",
                          help="batch width ('auto' allowed) for the "
                               "replication seeds (telemetry runs "
                               "always fall back to the scalar path; "
                               "accepted for symmetry)")
    _resilience_flags(simulate)
    return parser


def _positive_seconds(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a number of seconds") from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive, finite number of seconds, got {text}")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 0, got {value}")
    return value


def _batch_width(text: str):
    """``--batch`` accepts a fixed width or ``auto`` (the measured
    cost model in :mod:`repro.des.autotune` picks the width)."""
    if text.strip().lower() == "auto":
        return "auto"
    return _non_negative_int(text)


def _resilience_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--task-timeout", type=_positive_seconds,
                     default=None, metavar="SECONDS",
                     help="wall-clock deadline per simulation task; a "
                          "stalled task is retried, then quarantined "
                          "(default: none)")
    sub.add_argument("--max-retries", type=_non_negative_int,
                     default=None, metavar="N",
                     help="retries per failed task before it is "
                          "quarantined (default 2 when any resilience "
                          "flag is set)")
    sub.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="write a sweep checkpoint journal to PATH "
                          "(doubles as the failure manifest)")
    sub.add_argument("--resume", action="store_true",
                     help="resume from the --checkpoint journal, "
                          "skipping already-completed tasks")


def _resilience_from_args(args):
    """The :class:`~repro.resilience.ResilienceOptions` the flags ask
    for, or None when none were given (legacy fail-fast batches)."""
    from repro.resilience import ResilienceOptions, RetryPolicy

    wants = (args.task_timeout is not None
             or args.max_retries is not None
             or args.checkpoint is not None
             or args.resume)
    if not wants:
        return None
    if args.resume and args.checkpoint is None:
        raise ConfigurationError(
            "--resume needs --checkpoint PATH (the journal of the "
            "interrupted sweep to resume from)")
    retry = RetryPolicy(max_retries=args.max_retries) \
        if args.max_retries is not None else RetryPolicy()
    return ResilienceOptions(retry=retry,
                             task_timeout=args.task_timeout,
                             checkpoint=args.checkpoint,
                             resume=args.resume)


def _common_run_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--scale", type=float, default=1.0,
                     help="simulation effort scale (1.0 = paper scale)")
    sub.add_argument("--no-sim", action="store_true",
                     help="analytical series only (skip the simulator)")
    sub.add_argument("--csv", action="store_true",
                     help="emit CSV instead of an aligned table")
    sub.add_argument("--plot", action="store_true",
                     help="also render the series as an ASCII chart")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for independent simulation "
                          "runs (default 1: serial; results identical)")
    sub.add_argument("--batch", type=_batch_width, default=None,
                     metavar="N|auto",
                     help="advance up to N replication seeds per "
                          "scheduled unit through the lane-multiplexed "
                          "batch driver (vector-capable algorithms "
                          "only; default 1: scalar; 'auto' picks the "
                          "width from the persisted calibration; "
                          "results identical)")
    sub.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk simulation result cache")
    sub.add_argument("--clear-cache", action="store_true",
                     help="empty the simulation result cache first")
    sub.add_argument("--progress", action="store_true",
                     help="stream one line per completed simulation run "
                          "to stderr")
    _resilience_flags(sub)


def _emit(table, as_csv: bool, plot: bool = False) -> None:
    sys.stdout.write(to_csv(table) if as_csv else format_table(table))
    if plot:
        from repro.experiments.plot import render_chart
        sys.stdout.write("\n" + render_chart(table))
    sys.stdout.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved CLI.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


def _dispatch(args) -> int:
    try:
        if args.command == "list":
            for experiment in EXPERIMENTS.values():
                print(f"{experiment.experiment_id}  {experiment.figure:<10}"
                      f"  {experiment.title}")
            return 0
        if args.command == "list-algorithms":
            for spec in all_algorithms():
                model = "model" if spec.has_model else "sim-only"
                vec = {"full": "full", "lock": "lock-only",
                       "none": "scalar"}[spec.vector_tier]
                caps = ", ".join(spec.capabilities()) or "-"
                print(f"{spec.name:<26} {spec.label:<32} {model:<9} "
                      f"{vec:<10} {caps}")
            return 0
        if args.command == "list-workloads":
            from repro.workload import (
                all_arrival_processes,
                all_key_distributions,
            )
            for component in (all_arrival_processes()
                              + all_key_distributions()):
                path = "vector" if component.vector_native \
                    else "scalar-fallback"
                print(f"{component.category:<8} {component.name:<12} "
                      f"{path:<16} {component.label}")
            print(f"{'txn':<8} {'envelope':<12} {'scalar-fallback':<16} "
                  "multi-op transaction envelopes "
                  "(TransactionSpec(size=k), k > 1)")
            return 0
        if args.command == "claims":
            from repro.experiments.claims import evaluate_claims, format_claims
            print("note: `btree-perf claims` is folded into the "
                  "validation report of `btree-perf figures` "
                  "(docs/reproduction.md); this standalone command "
                  "remains for quick checks.", file=sys.stderr)
            results = evaluate_claims()
            sys.stdout.write(format_claims(results))
            return 0 if all(r.holds for r in results) else 1
        if args.command == "list-cluster-policies":
            from repro.cluster import POLICY_PRESETS
            for preset in POLICY_PRESETS.values():
                print(f"{preset.name:<14} {preset.describe()}")
            return 0
        if args.command == "cluster":
            return _cluster(args)
        if args.command == "simulate":
            return _simulate(args)
        if args.command == "figures":
            return _figures(args)
        simulate: Optional[bool] = False if args.no_sim else None
        if args.clear_cache:
            ResultCache().clear()
        cache = None if args.no_cache else ResultCache()
        progress = None
        if args.progress:
            from repro.obs import ProgressPrinter
            progress = ProgressPrinter()
        resilience = _resilience_from_args(args)
        with execution(jobs=args.jobs, cache=cache, progress=progress,
                       resilience=resilience, batch=args.batch):
            if args.command == "run":
                experiment = get_experiment(args.experiment_id)
                _emit(experiment.run(scale=args.scale, simulate=simulate),
                      args.csv, args.plot)
                return 0
            # "all"
            for experiment in EXPERIMENTS.values():
                _emit(experiment.run(scale=args.scale, simulate=simulate),
                      args.csv, args.plot)
            return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _figures(args) -> int:
    """The ``figures`` subcommand: the one-command full reproduction."""
    from repro.report import generate_figures

    if not args.figure_ids and not args.all_figures:
        raise ConfigurationError(
            "figures needs explicit ids (e.g. fig03 fig10) or --all; "
            "`btree-perf list` shows the registered figures")
    figure_ids = None if args.all_figures and not args.figure_ids \
        else args.figure_ids
    if args.clear_cache:
        ResultCache().clear()
    cache = None if args.no_cache else ResultCache()
    progress = None
    log = None
    if args.progress:
        from repro.obs import ProgressPrinter
        progress = ProgressPrinter()
        log = lambda message: print(message, file=sys.stderr)  # noqa: E731
    resilience = None
    if args.task_timeout is not None or args.max_retries is not None:
        from repro.resilience import ResilienceOptions, RetryPolicy
        retry = RetryPolicy(max_retries=args.max_retries) \
            if args.max_retries is not None else RetryPolicy()
        resilience = ResilienceOptions(retry=retry,
                                       task_timeout=args.task_timeout)
    formats = args.formats.split(",") if args.formats else None
    with execution(jobs=args.jobs, cache=cache, progress=progress,
                   resilience=resilience, batch=args.batch):
        result = generate_figures(
            figure_ids=figure_ids, scale=args.scale, out_dir=args.out,
            formats=formats,
            simulate=False if args.no_sim else None,
            resume=args.resume, journal_path=args.journal,
            threshold_scale=args.threshold_scale,
            include_claims=not args.no_claims, log=log)
    report = result.report
    print(f"{len(result.figures)} figure(s) -> {result.out_dir} "
          f"({sum(1 for o in result.figures if o.resumed)} resumed); "
          f"report: {result.report_markdown}")
    if not report.passed:
        for breach in report.breaches:
            print(f"BREACH {breach.figure_id} {breach.quantity} "
                  f"({breach.algorithm}): median {breach.metric} error "
                  f"{breach.median_error:.3g} > threshold "
                  f"{breach.threshold * report.threshold_scale:.3g}",
                  file=sys.stderr)
        for claim in report.failed_claims:
            print(f"CLAIM FAILED {claim.claim_id}: {claim.measured}",
                  file=sys.stderr)
        return 1
    return 0


def _cluster(args) -> int:
    """The ``cluster`` subcommand: one chaos run vs the model."""
    from repro.algorithms import get_algorithm
    from repro.cluster import (
        ClusterSimConfig,
        ClusterSpec,
        analyze_cluster,
        chaos_plan,
        get_policies,
        predict_availability,
        run_cluster_simulation,
        shard_service_demands,
    )
    from repro.model import paper_default_config
    from repro.resilience.faults import FaultPlan, plan_from_env

    spec_alg = get_algorithm(args.algorithm)
    if not spec_alg.has_model:
        raise ConfigurationError(
            f"{args.algorithm!r} has no analytical model to supply the "
            "per-shard service demands; pick one marked 'model' in "
            "`btree-perf list-algorithms`")
    if args.faults is not None and args.chaos is not None:
        raise ConfigurationError(
            "--faults and --chaos are mutually exclusive")

    config = paper_default_config(disk_cost=1.0)
    demands = shard_service_demands(spec_alg.analyze, config)
    mix = {"search": config.mix.q_search, "insert": config.mix.q_insert,
           "delete": config.mix.q_delete}
    spec = ClusterSpec(shards=args.shards, replicas=args.replicas)
    if args.rate is not None:
        rate = args.rate
    else:
        primary = (mix["insert"] * demands["insert"]
                   + mix["delete"] * demands["delete"]
                   + mix["search"] * demands["search"] / args.replicas)
        rate = args.shards * args.rho / primary
    if args.chaos is not None:
        plan = chaos_plan(args.shards, args.chaos, args.horizon)
    elif args.faults is not None:
        plan = FaultPlan.parse(args.faults)
    else:
        plan = plan_from_env() or FaultPlan()
    policies = get_policies(args.policy)

    prediction = analyze_cluster(spec, rate, demands, mix)
    result = run_cluster_simulation(ClusterSimConfig(
        spec=spec, arrival_rate=rate, service_means=demands, mix=mix,
        policies=policies, horizon=args.horizon, seed=args.seed,
        faults=plan))

    print(f"cluster: {args.shards} shard(s) x {args.replicas} "
          f"server(s), algorithm {args.algorithm}, rate {rate:.4g}, "
          f"horizon {args.horizon:g}, seed {args.seed}")
    print(f"policy {policies.name}: {policies.describe()}")
    print(f"chaos: {plan.encode() or 'none'}")
    stable = "stable" if prediction.stable else "SATURATED"
    print(f"model: response {prediction.mean_response:.3f} "
          f"(mixed {prediction.mixed_response(mix):.3f}), "
          f"router rho {prediction.router_utilization:.3f}, "
          f"primary rho {prediction.primary_utilization:.3f}, "
          f"replica rho {prediction.replica_utilization:.3f} [{stable}]")
    print(f"model availability: "
          f"{predict_availability(spec, plan, policies, args.horizon):.4f}")
    print(f"sim: attempted {result.attempted}, completed "
          f"{result.completed}, failed {result.failed}, shed "
          f"{result.shed_writes}, retries {result.retries}, hedges "
          f"{result.hedges} ({result.hedged_wins} wins)")
    print(f"sim availability {result.availability:.4f}, goodput "
          f"{result.goodput:.4f} ops/unit, mean response "
          f"{result.mean_response:.3f}")
    for shard in result.per_shard:
        print(f"  shard {shard.shard}: completed {shard.completed}, "
              f"failed {shard.failed}, shed {shard.shed_writes}, "
              f"retries {shard.retries}, hedged wins "
              f"{shard.hedged_wins}, busy {shard.busy_time:.1f}")
    return 0


def _simulate(args) -> int:
    """The ``simulate`` subcommand: one config under full telemetry."""
    from repro.experiments.common import scaled_sim_config
    from repro.obs import (
        ProgressPrinter,
        TelemetryOptions,
        collect_replications,
        write_ndjson,
    )
    from repro.simulator.config import SimulationConfig

    config = scaled_sim_config(
        SimulationConfig(algorithm=args.algorithm,
                         arrival_rate=args.rate, seed=args.seed),
        args.scale)
    options = TelemetryOptions(sample_interval=args.sample_interval)
    progress = ProgressPrinter(total=args.seeds) if args.progress else None
    with execution(resilience=_resilience_from_args(args),
                   batch=args.batch):
        results, merged = collect_replications(
            config, n_seeds=args.seeds, options=options, jobs=args.jobs,
            progress=progress)
    if args.metrics_out:
        write_ndjson(args.metrics_out, merged)
        print(f"telemetry written to {args.metrics_out} "
              f"(schema v{merged.schema}, {len(merged.runs)} run(s), "
              f"{len(merged.runs[0].levels)} levels)")
    for offset, result in enumerate(results):
        if result is None:
            print(f"seed={config.seed + offset} QUARANTINED "
                  f"(see the failure manifest / stderr)")
            continue
        status = ("OVERFLOW" if result.overflowed
                  else f"throughput={result.throughput:.4g} "
                       f"mean_response={result.overall_mean_response:.4g}")
        print(f"seed={result.seed} {status}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
