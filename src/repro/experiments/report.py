"""Plain-text and CSV rendering of experiment tables.

These formatters remain the building blocks for terminal output
(``btree-perf run``/``all``) and for the ``tables.txt`` artifact of the
unified report pipeline.  As a *standalone* report generator this
module is deprecated: ``btree-perf figures`` (:mod:`repro.report`)
renders every figure with data sidecars and a machine-checked
validation report in one resumable run — see ``docs/reproduction.md``.
"""

from __future__ import annotations

import io
import math
from typing import Sequence

from repro.experiments.common import ExperimentTable


def _format_cell(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "saturated"
        if math.isnan(value):
            return "-"
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(table: ExperimentTable) -> str:
    """Aligned monospace rendering, figure header and notes included."""
    header = f"{table.experiment_id}  ({table.figure})  {table.title}"
    cells = [[_format_cell(v) for v in row] for row in table.rows]
    widths = [
        max(len(name), *(len(row[i]) for row in cells)) if cells else len(name)
        for i, name in enumerate(table.columns)
    ]
    out = io.StringIO()
    out.write(header + "\n")
    out.write("=" * len(header) + "\n")
    out.write("  ".join(name.rjust(w)
                        for name, w in zip(table.columns, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in cells:
        out.write("  ".join(cell.rjust(w)
                            for cell, w in zip(row, widths)) + "\n")
    for note in table.notes:
        out.write(f"note: {note}\n")
    return out.getvalue()


def to_csv(table: ExperimentTable) -> str:
    """Comma-separated rendering (header row first)."""
    lines = [",".join(table.columns)]
    for row in table.rows:
        lines.append(",".join(_format_cell(v).replace(",", ";")
                              for v in row))
    return "\n".join(lines) + "\n"


def print_tables(tables: Sequence[ExperimentTable]) -> None:
    """Print several tables separated by blank lines."""
    for table in tables:
        print(format_table(table))
        print()


def main() -> int:  # pragma: no cover - pointer shim
    """Deprecated entry point; points at the unified pipeline."""
    import sys

    print("repro.experiments.report is a formatting library, not a "
          "report generator anymore.\n"
          "Use `btree-perf figures --all` for the unified figure + "
          "validation-report pipeline (docs/reproduction.md), or "
          "`btree-perf run <id> [--csv]` for one table.",
          file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
