"""Throughput solvers.

* :func:`max_throughput` — Theorem 2's maximum sustainable arrival rate:
  the largest rate at which every lock queue is still stable (for
  lock-coupling the binding queue is the root; for the Link-type
  algorithm it may be any level).
* :func:`arrival_rate_for_root_utilization` — the arrival rate at which
  the root writer utilization reaches a target (Section 6 uses
  rho_w = .5 as the "effective maximum arrival rate" against which the
  rules of thumb are checked).

Both are monotone bisection searches over the analytical predictions, so
they work unchanged for all three algorithm analyses (pass the analyzer
callable).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigurationError, ConvergenceError
from repro.model.params import ModelConfig
from repro.model.results import AlgorithmPrediction

Analyzer = Callable[..., AlgorithmPrediction]

#: Hard ceiling for the exponential bracket search; arrival rates are in
#: units of 1/root-search so physical systems sit far below this.
_BRACKET_LIMIT = 1e9


def _bracket_instability(analyze: Analyzer, config: ModelConfig,
                         probe, start: float) -> float:
    """Grow an upper bound until the prediction goes unstable."""
    hi = start
    while probe(analyze(config, hi)) and hi < _BRACKET_LIMIT:
        hi *= 2.0
    if hi >= _BRACKET_LIMIT:
        raise ConvergenceError(
            "no instability found below the bracket limit; the algorithm "
            "has no effective maximum throughput at this configuration "
            "(the paper observes this for the Link-type algorithm)",
            solver="max-throughput",
            context={"bracket_limit": _BRACKET_LIMIT},
        )
    return hi


def max_throughput(analyze: Analyzer, config: ModelConfig,
                   rel_tol: float = 1e-4, start: float = 1e-3,
                   **analyzer_kwargs) -> float:
    """Largest arrival rate with a stable prediction (Theorem 2).

    ``analyze`` is one of the ``analyze_*`` functions; extra keyword
    arguments are forwarded to it.
    """
    def run(config: ModelConfig, rate: float) -> AlgorithmPrediction:
        return analyze(config, rate, **analyzer_kwargs)

    def stable(prediction: AlgorithmPrediction) -> bool:
        return prediction.stable

    if not stable(run(config, start)):
        # Shrink until stable so the bracket is valid.
        lo = start
        while not stable(run(config, lo)):
            lo /= 2.0
            if lo < 1e-15:
                raise ConvergenceError(
                    "unstable even at negligible load",
                    solver="max-throughput",
                    context={"start": start})
        hi = lo * 2.0
    else:
        hi = _bracket_instability(run, config, stable, start)
        lo = hi / 2.0
    return _bisect(lambda rate: stable(run(config, rate)), lo, hi, rel_tol)


def arrival_rate_for_root_utilization(
        analyze: Analyzer, config: ModelConfig, target: float = 0.5,
        rel_tol: float = 1e-4, start: float = 1e-3,
        use_max_level: bool = False, **analyzer_kwargs) -> float:
    """Arrival rate at which the (root) writer utilization hits ``target``.

    With ``use_max_level=True`` the criterion is the maximum rho_w over
    all levels instead of the root's (appropriate for the Link-type
    algorithm, whose bottleneck is usually a lower level).
    """
    if not 0.0 < target < 1.0:
        raise ConfigurationError(f"target utilization must be in (0,1), got {target}")

    def utilization(rate: float) -> float:
        prediction = analyze(config, rate, **analyzer_kwargs)
        if use_max_level:
            return prediction.max_writer_utilization
        return prediction.root_writer_utilization

    def below(rate: float) -> bool:
        return utilization(rate) < target

    if not below(start):
        lo = start
        while not below(lo):
            lo /= 2.0
            if lo < 1e-15:
                raise ConvergenceError(
                    f"utilization exceeds {target} even at negligible load",
                    solver="root-utilization",
                    context={"target": target})
        hi = lo * 2.0
    else:
        hi = start
        while below(hi):
            hi *= 2.0
            if hi > _BRACKET_LIMIT:
                raise ConvergenceError(
                    f"utilization never reaches {target}; effectively "
                    "unbounded throughput at this configuration",
                    solver="root-utilization",
                    context={"target": target,
                             "bracket_limit": _BRACKET_LIMIT})
        lo = hi / 2.0
    return _bisect(below, lo, hi, rel_tol)


def _bisect(predicate_holds_below: Callable[[float], bool], lo: float,
            hi: float, rel_tol: float, max_iter: int = 200) -> float:
    """Largest x in [lo, hi] where the predicate still holds."""
    for _ in range(max_iter):
        if hi - lo <= rel_tol * hi:
            return lo
        mid = 0.5 * (lo + hi)
        if predicate_holds_below(mid):
            lo = mid
        else:
            hi = mid
    raise ConvergenceError(  # pragma: no cover - 200 halvings always suffice
        f"bisection failed to converge in {max_iter} iterations",
        solver="bisection", iterations=max_iter, residual=hi - lo)


def stability_margin(prediction: AlgorithmPrediction) -> float:
    """1 - max rho_w: how far a stable prediction sits from saturation
    (negative infinity when already unstable)."""
    if not prediction.stable:
        return -math.inf
    return 1.0 - prediction.max_writer_utilization
