"""Prediction-vs-simulation comparison utilities.

The paper's methodology is to overlay analytical curves on simulated
points; this module packages one such comparison point so applications
(and this repository's own integration tests and examples) can validate
a model configuration against the simulator with one call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.algorithms import get_algorithm
from repro.btree import build_tree, collect_statistics
from repro.errors import ConfigurationError
from repro.model.occupancy import OccupancyModel
from repro.model.params import ModelConfig, TreeShape
from repro.model.results import AlgorithmPrediction
from repro.parallel import replication_tasks, run_batch
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import pooled_response_means, run_replications
from repro.simulator.metrics import SimulationResult

Analyzer = Callable[..., AlgorithmPrediction]

OPERATIONS = ("search", "insert", "delete")


@dataclass(frozen=True)
class ComparisonRow:
    """One operation's predicted vs simulated response time."""

    operation: str
    predicted: float
    simulated: float

    @property
    def relative_error(self) -> float:
        """|sim - model| / model; NaN when either side is undefined."""
        if not math.isfinite(self.predicted) \
                or not math.isfinite(self.simulated) \
                or self.predicted == 0.0:
            return math.nan
        return abs(self.simulated - self.predicted) / self.predicted


@dataclass(frozen=True)
class ValidationReport:
    """A full comparison at one operating point."""

    algorithm: str
    arrival_rate: float
    rows: List[ComparisonRow]
    prediction: AlgorithmPrediction
    results: List[SimulationResult]

    @property
    def max_relative_error(self) -> float:
        errors = [row.relative_error for row in self.rows
                  if not math.isnan(row.relative_error)]
        return max(errors) if errors else math.nan

    @property
    def any_overflowed(self) -> bool:
        return any(result.overflowed for result in self.results)

    def agrees_within(self, tolerance: float) -> bool:
        """True when every operation's relative error is within
        ``tolerance`` (and neither side saturated)."""
        if not self.prediction.stable or self.any_overflowed:
            return False
        return self.max_relative_error <= tolerance

    def format(self) -> str:
        lines = [f"{self.algorithm} @ lambda={self.arrival_rate:g} "
                 f"({len(self.results)} seed(s))"]
        for row in self.rows:
            error = ("-" if math.isnan(row.relative_error)
                     else f"{row.relative_error:.1%}")
            lines.append(f"  {row.operation:<7} model {row.predicted:8.3f}"
                         f"  sim {row.simulated:8.3f}  err {error}")
        return "\n".join(lines)


def measured_model_config(sim_config: SimulationConfig,
                          ) -> ModelConfig:
    """A :class:`ModelConfig` whose tree shape is *measured* from the
    simulator configuration's construction phase, so shape mismatch
    cannot pollute a comparison."""
    tree = build_tree(sim_config.n_items, order=sim_config.order,
                      insert_fraction=sim_config.mix.insert_share or 1.0,
                      merge_policy=sim_config.merge_policy,
                      key_space=sim_config.key_space,
                      seed=sim_config.seed)
    stats = collect_statistics(tree)
    return ModelConfig(mix=sim_config.mix, costs=sim_config.costs,
                       shape=TreeShape.from_statistics(stats),
                       order=sim_config.order)


def resolve_analyzer(analyzer: Optional[Analyzer],
                     algorithm: str) -> Analyzer:
    """``analyzer`` itself, or ``algorithm``'s registered analytical
    model when None (ConfigurationError for simulator-only specs)."""
    if analyzer is not None:
        return analyzer
    spec = get_algorithm(algorithm)
    if not spec.has_model:
        raise ConfigurationError(
            f"algorithm {algorithm!r} has no registered analytical "
            "model; pass an analyzer explicitly")
    return spec.analyze


def compare_prediction_to_simulation(
        analyzer: Optional[Analyzer],
        sim_config: SimulationConfig,
        model_config: Optional[ModelConfig] = None,
        n_seeds: int = 2,
        occupancy: Optional[OccupancyModel] = None,
        jobs: Optional[int] = None,
        **analyzer_kwargs) -> ValidationReport:
    """Run the analyzer and the simulator at ``sim_config``'s operating
    point and tabulate per-operation agreement.

    ``analyzer=None`` uses the algorithm's registered analytical model
    (see :mod:`repro.algorithms`).  ``model_config`` defaults to
    :func:`measured_model_config` (shape measured from an
    identically-built tree).  ``jobs`` fans the replication seeds out
    over worker processes (see :mod:`repro.parallel`); results are
    identical to serial execution.
    """
    analyzer = resolve_analyzer(analyzer, sim_config.algorithm)
    config = model_config if model_config is not None \
        else measured_model_config(sim_config)
    if occupancy is not None:
        analyzer_kwargs["occupancy"] = occupancy
    prediction = analyzer(config, sim_config.arrival_rate,
                          **analyzer_kwargs)
    results = run_replications(sim_config, n_seeds=n_seeds, jobs=jobs)
    return _report(sim_config, prediction, results)


def _report(sim_config: SimulationConfig,
            prediction: AlgorithmPrediction,
            results: List[SimulationResult]) -> ValidationReport:
    means = pooled_response_means(results)
    rows = [ComparisonRow(op, prediction.response(op), means[op])
            for op in OPERATIONS]
    return ValidationReport(
        algorithm=sim_config.algorithm,
        arrival_rate=sim_config.arrival_rate,
        rows=rows, prediction=prediction, results=results,
    )


def sweep_agreement(analyzer: Optional[Analyzer],
                    sim_config: SimulationConfig,
                    rates: Sequence[float], n_seeds: int = 2,
                    jobs: Optional[int] = None,
                    ) -> Dict[float, ValidationReport]:
    """Validate several operating points, reusing one measured shape.

    ``analyzer=None`` uses the algorithm's registered analytical model.
    The whole ``(rate, seed)`` grid is submitted as one batch through
    :func:`repro.parallel.run_batch`, so with ``jobs=N`` (or an ambient
    parallel execution context) every point's replications overlap.
    """
    analyzer = resolve_analyzer(analyzer, sim_config.algorithm)
    config = measured_model_config(sim_config)
    tasks = []
    for rate in rates:
        tasks.extend(replication_tasks(sim_config.with_rate(rate), n_seeds))
    flat = run_batch(tasks, jobs=jobs)
    reports: Dict[float, ValidationReport] = {}
    for index, rate in enumerate(rates):
        point = sim_config.with_rate(rate)
        prediction = analyzer(config, rate)
        results = flat[index * n_seeds:(index + 1) * n_seeds]
        reports[rate] = _report(point, prediction, results)
    return reports
