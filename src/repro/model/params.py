"""Model inputs: operation mix, cost model and tree shape.

All three analyses consume a single :class:`ModelConfig` combining:

* :class:`OperationMix` — the probabilities (q_s, q_i, q_d) that an
  arriving operation is a search, insert or delete;
* :class:`CostModel` — the serial access-time parameters of paper
  Section 5 (Se(i), M, Sp(i), Mg(i)) expressed through the Section 5.3
  conventions: the time unit is one root search, on-disk levels are
  dilated by the disk cost D, a leaf modify costs twice a leaf search and
  a split three times a search;
* :class:`TreeShape` — the height h and per-level fanouts E(i), either
  idealised from (n_items, order) with the 0.69 N fill rule or measured
  from an actual tree.

``paper_default_config()`` reproduces the experimental setting of Section
5.3: N = 13, ~40,000 items, h = 5, root fanout ~6, two in-memory levels,
D = 5, mix (.3, .5, .2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.btree.stats import LN2_FILL, TreeStatistics
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OperationMix:
    """Probabilities that an arriving operation is a search / insert /
    delete.  They must sum to 1."""

    q_search: float
    q_insert: float
    q_delete: float

    def __post_init__(self) -> None:
        for name, q in (("q_search", self.q_search),
                        ("q_insert", self.q_insert),
                        ("q_delete", self.q_delete)):
            if not 0.0 <= q <= 1.0:
                raise ConfigurationError(f"{name}={q} outside [0, 1]")
        total = self.q_search + self.q_insert + self.q_delete
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ConfigurationError(
                f"operation mix (q_search={self.q_search}, "
                f"q_insert={self.q_insert}, q_delete={self.q_delete}) "
                f"sums to {total}, not 1")

    @property
    def q_update(self) -> float:
        """Probability of an update (insert or delete)."""
        return self.q_insert + self.q_delete

    @property
    def insert_share(self) -> float:
        """q_i / (q_i + q_d): the insert fraction among updates."""
        if self.q_update == 0.0:
            return 0.0
        return self.q_insert / self.q_update

    @property
    def delete_share(self) -> float:
        """q_d / (q_i + q_d): Corollary 1's mix parameter ``q``."""
        if self.q_update == 0.0:
            return 0.0
        return self.q_delete / self.q_update

    def grows(self) -> bool:
        """True when inserts outnumber deletes (steady-state assumption)."""
        return self.q_insert > self.q_delete


#: The paper's concurrent-operation proportions (Section 5.3).
PAPER_MIX = OperationMix(q_search=0.3, q_insert=0.5, q_delete=0.2)


@dataclass(frozen=True)
class CostModel:
    """Serial access-time parameters (paper Section 5 parameter list).

    Times are in units of one in-memory node search; the root search is
    the paper's unit of time because the top levels are cached.
    """

    #: Time to search an in-memory node (the time unit).
    node_search_time: float = 1.0
    #: Dilation factor for a node that lives on disk (paper's D).
    disk_cost: float = 5.0
    #: Number of levels (counted from the root) held in memory.
    in_memory_levels: int = 2
    #: Leaf modify cost as a multiple of the leaf search cost.
    modify_factor: float = 2.0
    #: Split cost (including the parent modify) as a multiple of search.
    split_factor: float = 3.0
    #: Merge cost multiplier; merges are negligible under merge-at-empty
    #: but the Theorem 1 formulas accept a cost anyway.
    merge_factor: float = 3.0
    #: Optional explicit per-level access multipliers, indexed leaf-first
    #: (``level_dilations[0]`` is the leaves').  When given they replace
    #: the sharp in-memory/on-disk split — the LRU buffering extension
    #: (:mod:`repro.model.buffering`) produces fractional dilations from
    #: per-level hit rates.
    level_dilations: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.node_search_time <= 0:
            raise ConfigurationError("node_search_time must be positive")
        if self.disk_cost < 1.0:
            raise ConfigurationError(
                f"disk_cost is a dilation factor >= 1, got {self.disk_cost}")
        if self.in_memory_levels < 0:
            raise ConfigurationError("in_memory_levels must be >= 0")
        if self.level_dilations is not None:
            if any(d < 1.0 for d in self.level_dilations):
                raise ConfigurationError("level dilations must be >= 1")

    def dilation(self, level: int, height: int) -> float:
        """Access-time multiplier for ``level`` (leaves = 1, root = h)."""
        if self.level_dilations is not None:
            if not 1 <= level <= len(self.level_dilations):
                raise ConfigurationError(
                    f"no dilation for level {level}; "
                    f"{len(self.level_dilations)} levels configured")
            return self.level_dilations[level - 1]
        if level > height - self.in_memory_levels:
            return 1.0
        return self.disk_cost

    def se(self, level: int, height: int) -> float:
        """Se(i): expected time to search a level-``level`` node."""
        return self.node_search_time * self.dilation(level, height)

    def modify(self, height: int) -> float:
        """M: expected time to modify a leaf."""
        return self.modify_factor * self.se(1, height)

    def modify_at(self, level: int, height: int) -> float:
        """Generalised modify cost for a level-``level`` node (used by the
        Link-type model where parents are updated under their own lock)."""
        return self.modify_factor * self.se(level, height)

    def sp(self, level: int, height: int) -> float:
        """Sp(i): expected time to split a level-``level`` node (includes
        the parent modify, per the paper's parameter list)."""
        return self.split_factor * self.se(level, height)

    def mg(self, level: int, height: int) -> float:
        """Mg(i): expected time to merge a level-``level`` node."""
        return self.merge_factor * self.se(level, height)


@dataclass(frozen=True)
class TreeShape:
    """Height and per-level fanouts.

    ``fanouts[i]`` (for i = 2 .. h, exposed through :meth:`fanout`) is
    E(i): the expected number of children of a level-i node.  The root's
    fanout depends on tree size; below the root it is ~0.69 N.
    """

    height: int
    #: E(2) ... E(h) as a tuple indexed by level-2 offset.
    _fanouts: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ConfigurationError(f"height must be >= 1, got {self.height}")
        if len(self._fanouts) != max(0, self.height - 1):
            raise ConfigurationError(
                f"need {self.height - 1} fanouts for height {self.height}, "
                f"got {len(self._fanouts)}"
            )
        if any(f < 1.0 for f in self._fanouts):
            raise ConfigurationError("fanouts must be >= 1")

    @staticmethod
    def from_fanouts(fanouts: Tuple[float, ...]) -> "TreeShape":
        """Build from (E(2), ..., E(h))."""
        return TreeShape(height=len(fanouts) + 1, _fanouts=tuple(fanouts))

    @classmethod
    def ideal(cls, n_items: int, order: int,
              fill: float = LN2_FILL) -> "TreeShape":
        """Idealised shape of a random tree: per-level node counts shrink
        by the effective fanout 0.69 N until one root remains."""
        if n_items < 1:
            return cls(height=1, _fanouts=())
        effective = max(2.0, fill * order)
        counts = [max(1.0, n_items / effective)]  # leaves
        while counts[-1] > 1.0:
            counts.append(max(1.0, counts[-1] / effective))
        # counts[k] = number of nodes at level k+1; root is the last.
        fanouts = []
        for i in range(1, len(counts)):
            fanouts.append(counts[i - 1] / counts[i])
        if fanouts:
            # A real root has at least 2 children (it is collapsed
            # otherwise), so clamp the idealised root fanout.
            fanouts[-1] = max(2.0, fanouts[-1])
        return cls(height=len(counts), _fanouts=tuple(fanouts))

    @classmethod
    def from_statistics(cls, stats: TreeStatistics) -> "TreeShape":
        """Measured shape: E(i) = mean children of level-i nodes."""
        fanouts = tuple(stats.fanout(level)
                        for level in range(2, stats.height + 1))
        return cls(height=stats.height, _fanouts=fanouts)

    def fanout(self, level: int) -> float:
        """E(level) for level in 2..h."""
        if not 2 <= level <= self.height:
            raise ConfigurationError(
                f"no fanout for level {level} in a height-{self.height} tree")
        return self._fanouts[level - 2]

    @property
    def root_fanout(self) -> float:
        """E(h): the number of children of the root."""
        if self.height == 1:
            return 1.0
        return self.fanout(self.height)

    def nodes_at(self, level: int) -> float:
        """Expected number of nodes at ``level`` (root = 1)."""
        if not 1 <= level <= self.height:
            raise ConfigurationError(f"no level {level}")
        count = 1.0
        for upper in range(level + 1, self.height + 1):
            count *= self.fanout(upper)
        return count

    def arrival_share(self, level: int) -> float:
        """Fraction of the total arrival rate seen by one node of
        ``level`` — Proposition 2's repeated division by fanouts."""
        return 1.0 / self.nodes_at(level)


@dataclass(frozen=True)
class ModelConfig:
    """Everything an analysis needs except the arrival rate."""

    mix: OperationMix
    costs: CostModel
    shape: TreeShape
    #: Maximum node size N (entries per node).
    order: int

    def __post_init__(self) -> None:
        if self.order < 3:
            raise ConfigurationError(f"order must be >= 3, got {self.order}")

    @property
    def height(self) -> int:
        return self.shape.height

    def with_disk_cost(self, disk_cost: float) -> "ModelConfig":
        """Copy with a different disk dilation (Figure 11 sweeps this)."""
        return replace(self, costs=replace(self.costs, disk_cost=disk_cost))

    def with_order(self, order: int, n_items: int) -> "ModelConfig":
        """Copy with a different node size; the shape is re-idealised for
        the same item count (Figures 13/14 sweep the node size)."""
        return replace(self, order=order,
                       shape=TreeShape.ideal(n_items, order))


#: Item count of the paper's experimental tree.
PAPER_N_ITEMS = 40_000
#: Maximum node size of the paper's experimental tree.
PAPER_ORDER = 13


def paper_default_config(order: int = PAPER_ORDER,
                         n_items: int = PAPER_N_ITEMS,
                         disk_cost: float = 5.0,
                         mix: OperationMix = PAPER_MIX,
                         in_memory_levels: int = 2) -> ModelConfig:
    """The Section 5.3 experimental configuration."""
    return ModelConfig(
        mix=mix,
        costs=CostModel(disk_cost=disk_cost,
                        in_memory_levels=in_memory_levels),
        shape=TreeShape.ideal(n_items, order),
        order=order,
    )
