"""LRU buffer-pool extension.

The paper's conclusions promise "a discussion of ... LRU buffering" for
the full version.  This module supplies the standard model: the B-tree's
pages compete for a buffer pool of ``buffer_pages`` frames under LRU
replacement.  A descent touches one page per level, so the per-page
reference rate at level i is proportional to ``1 / nodes_at(i)`` —
upper levels are hotter, and LRU approximately keeps the hottest pages
resident.  Allocating the buffer top-down gives per-level hit rates:

* levels whose whole page set fits in the remaining budget are fully
  cached (hit rate 1);
* the first level that does not fit gets the leftover frames spread
  uniformly across its pages (hit rate = leftover / n_pages — uniform
  access within a level makes all its pages equally hot);
* everything below misses entirely.

The effective access-time dilation of level i is then
``1 + (1 - hit(i)) * (disk_cost - 1)``, which plugs straight into the
framework through :class:`~repro.model.params.CostModel`'s
``level_dilations``.  The paper's fixed "top two levels in memory" is
the special case of a buffer just large enough for those levels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.model.params import CostModel, ModelConfig, TreeShape


@dataclass(frozen=True)
class BufferPlan:
    """Per-level residency of a tree in an LRU buffer pool."""

    buffer_pages: float
    #: Pages per level, leaf-first.
    pages: Tuple[float, ...]
    #: Hit rate per level, leaf-first.
    hit_rates: Tuple[float, ...]

    @property
    def total_pages(self) -> float:
        return sum(self.pages)

    def hit_rate(self, level: int) -> float:
        return self.hit_rates[level - 1]

    @property
    def overall_hit_rate(self) -> float:
        """Hit probability of a uniformly chosen descent access."""
        return sum(self.hit_rates) / len(self.hit_rates)


def plan_buffer(shape: TreeShape, buffer_pages: float) -> BufferPlan:
    """Distribute ``buffer_pages`` LRU frames over the tree's levels,
    hottest (top) levels first."""
    if buffer_pages < 0:
        raise ConfigurationError(f"buffer_pages must be >= 0, got {buffer_pages}")
    pages = [shape.nodes_at(level) for level in range(1, shape.height + 1)]
    hit_rates: List[float] = [0.0] * shape.height
    remaining = float(buffer_pages)
    for level in range(shape.height, 0, -1):  # root down
        level_pages = pages[level - 1]
        if remaining <= 0.0:
            break
        if remaining >= level_pages:
            hit_rates[level - 1] = 1.0
            remaining -= level_pages
        else:
            hit_rates[level - 1] = remaining / level_pages
            remaining = 0.0
    return BufferPlan(buffer_pages=float(buffer_pages),
                      pages=tuple(pages), hit_rates=tuple(hit_rates))


def buffered_cost_model(costs: CostModel, shape: TreeShape,
                        buffer_pages: float) -> CostModel:
    """A :class:`CostModel` whose per-level dilations reflect the LRU
    hit rates of a ``buffer_pages``-frame pool."""
    plan = plan_buffer(shape, buffer_pages)
    dilations = tuple(
        1.0 + (1.0 - hit) * (costs.disk_cost - 1.0)
        for hit in plan.hit_rates
    )
    return replace(costs, level_dilations=dilations)


def buffered_config(config: ModelConfig, buffer_pages: float) -> ModelConfig:
    """Copy of ``config`` with the buffer-pool cost model installed."""
    return replace(config, costs=buffered_cost_model(
        config.costs, config.shape, buffer_pages))


def pages_for_top_levels(shape: TreeShape, n_levels: int) -> float:
    """Frames needed to fully cache the top ``n_levels`` levels — the
    buffer size at which this model reduces to the paper's fixed
    in-memory-levels setting."""
    if n_levels < 0:
        raise ConfigurationError(f"n_levels must be >= 0, got {n_levels}")
    top = range(max(1, shape.height - n_levels + 1), shape.height + 1)
    return sum(shape.nodes_at(level) for level in top)
