"""Result containers shared by the three algorithm analyses."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Canonical operation labels used in response-time dictionaries.
SEARCH = "search"
INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class LevelSolution:
    """The solved lock queue of one representative node at ``level``.

    All quantities follow the paper's variable names: ``R``/``W`` are the
    expected times to *obtain* an R/W lock at the level, ``rho_w`` the
    writer presence probability, ``r_u``/``r_e`` the reader drains of
    Theorem 6.
    """

    level: int
    lambda_r: float
    lambda_w: float
    mu_r: float
    mu_w: float
    rho_w: float
    r_u: float
    r_e: float
    R: float
    W: float

    @property
    def reader_drain(self) -> float:
        """rho_w r_u + (1 - rho_w) r_e."""
        return self.rho_w * self.r_u + (1.0 - self.rho_w) * self.r_e

    @property
    def writer_service_time(self) -> float:
        return 1.0 / self.mu_w if self.mu_w > 0 else 0.0


@dataclass(frozen=True)
class AlgorithmPrediction:
    """Full analytical prediction for one algorithm at one arrival rate."""

    algorithm: str
    arrival_rate: float
    stable: bool
    #: Per-level queue solutions, index 0 = leaves.  Empty when unstable.
    levels: List[LevelSolution] = field(default_factory=list)
    #: Expected response times keyed by "search" / "insert" / "delete";
    #: +inf when unstable.
    response_times: Dict[str, float] = field(default_factory=dict)
    #: Level whose queue saturated first, when unstable.
    saturated_level: Optional[int] = None

    @property
    def root_writer_utilization(self) -> float:
        """rho_w at the root — the paper's bottleneck indicator
        (Figure 10); +inf when the prediction is unstable."""
        if not self.stable:
            return math.inf
        return self.levels[-1].rho_w

    @property
    def max_writer_utilization(self) -> float:
        """max over levels of rho_w (the Link-type bottleneck need not be
        the root); +inf when unstable."""
        if not self.stable:
            return math.inf
        return max(level.rho_w for level in self.levels)

    def response(self, operation: str) -> float:
        """Response time for ``operation`` (+inf when unstable)."""
        if not self.stable:
            return math.inf
        return self.response_times[operation]

    def level(self, level: int) -> LevelSolution:
        """Solution for a specific level (leaves = 1)."""
        return self.levels[level - 1]

    @property
    def mean_response(self) -> float:
        """Mix-weighted response is computed by callers that know the mix;
        this is the plain mean over the defined operations."""
        if not self.stable:
            return math.inf
        return sum(self.response_times.values()) / len(self.response_times)


def unstable_prediction(algorithm: str, arrival_rate: float,
                        saturated_level: int) -> AlgorithmPrediction:
    """Standard result for a saturated configuration."""
    return AlgorithmPrediction(
        algorithm=algorithm,
        arrival_rate=arrival_rate,
        stable=False,
        levels=[],
        response_times={SEARCH: math.inf, INSERT: math.inf, DELETE: math.inf},
        saturated_level=saturated_level,
    )
