"""Rules of Thumb (paper Section 6).

Closed-form approximations of the "effective maximum arrival rate"
``lambda_{rho=.5}`` — the arrival rate at which the root writer
utilization reaches one half, beyond which waiting grows
disproportionately:

* Rule 1 — Naive Lock-coupling, full form.
* Rule 2 — Naive Lock-coupling in the large-node / large-root-fanout
  limit: the maximum rate no longer depends on the node size at all.
* Rule 3 — Optimistic Descent, full form (writers are the redo
  operations, rate ``q_i Pr[F(1)] lambda``, so the achievable rate grows
  roughly like N / log^2 N with the node size).
* Rule 4 — Optimistic Descent limit.

The contrast between Rules 2 and 4 is the paper's design guidance: keep
nodes small for Naive Lock-coupling, make them as large as possible for
Optimistic Descent.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.model.occupancy import OccupancyModel
from repro.model.params import ModelConfig


def _common_inputs(config: ModelConfig,
                   occupancy: Optional[OccupancyModel]):
    h = config.height
    if h < 2:
        raise ConfigurationError("rules of thumb need a tree of height >= 2")
    occ = occupancy if occupancy is not None \
        else OccupancyModel.corollary1(config.mix, config.order, h)
    se_root = config.costs.se(h, h)
    se_2 = config.costs.se(2, h)
    e_root = config.shape.root_fanout
    return occ, se_root, se_2, e_root


def rule_of_thumb_1(config: ModelConfig,
                    occupancy: Optional[OccupancyModel] = None) -> float:
    """Naive Lock-coupling: lambda such that the root rho_w is 0.5."""
    mix = config.mix
    q_s = mix.q_search
    if q_s >= 1.0:
        raise ConfigurationError("rule of thumb 1 needs some updates (q_s < 1)")
    occ, se_root, se_2, e_root = _common_inputs(config, occupancy)
    pr_f_below_root = occ.full(config.height - 1)

    root_term = se_root * (1.0 + math.log1p(q_s / (2.0 * (1.0 - q_s))))
    child_weight = (1.0 / (2.0 * e_root - 1.0)
                    + mix.insert_share * pr_f_below_root)
    child_term = se_2 * (1.5 + q_s / (2.0 * e_root * (1.0 - q_s)))
    denominator = 2.0 * (1.0 - q_s) * (root_term + child_weight * child_term)
    return 1.0 / denominator


def rule_of_thumb_2(config: ModelConfig) -> float:
    """Naive Lock-coupling, large-node limit: independent of N."""
    q_s = config.mix.q_search
    if q_s >= 1.0:
        raise ConfigurationError("rule of thumb 2 needs some updates (q_s < 1)")
    se_root = config.costs.se(config.height, config.height)
    root_term = se_root * (1.0 + math.log1p(q_s / (2.0 * (1.0 - q_s))))
    return 1.0 / (2.0 * (1.0 - q_s) * root_term)


def rule_of_thumb_3(config: ModelConfig,
                    occupancy: Optional[OccupancyModel] = None) -> float:
    """Optimistic Descent: lambda such that the root rho_w is 0.5.

    Writers at the root are the redo operations, so the writer fraction
    is ``q_i Pr[F(1)]`` and the reader/writer ratio is its reciprocal
    (too large for the ``ln(1+x) ~= x`` shortcut of Rule 1).
    """
    mix = config.mix
    occ, se_root, se_2, e_root = _common_inputs(config, occupancy)
    writer_fraction = mix.q_insert * occ.full(1)
    if writer_fraction <= 0.0:
        raise ConfigurationError(
            "rule of thumb 3 needs inserts that can split (q_i Pr[F(1)] > 0)")
    pr_f_below_root = occ.full(config.height - 1)

    root_term = se_root * (1.0 + math.log1p(1.0 / (2.0 * writer_fraction)))
    child_weight = (1.0 / (2.0 * e_root - 1.0)
                    + mix.insert_share * pr_f_below_root)
    child_term = se_2 * (
        1.5 + math.log1p(1.0 / (2.0 * e_root * writer_fraction)))
    denominator = 2.0 * writer_fraction * (root_term + child_weight * child_term)
    return 1.0 / denominator


def rule_of_thumb_4(config: ModelConfig,
                    occupancy: Optional[OccupancyModel] = None) -> float:
    """Optimistic Descent, large-node limit."""
    mix = config.mix
    occ, se_root, _se_2, _e_root = _common_inputs(config, occupancy)
    writer_fraction = mix.q_insert * occ.full(1)
    if writer_fraction <= 0.0:
        raise ConfigurationError(
            "rule of thumb 4 needs inserts that can split (q_i Pr[F(1)] > 0)")
    root_term = se_root * (1.0 + math.log1p(1.0 / (2.0 * writer_fraction)))
    return 1.0 / (2.0 * writer_fraction * root_term)
