"""Analysis of the Optimistic Descent algorithm (paper Section 5.1).

Optimistic Descent reuses the Naive Lock-coupling machinery with a
different operation classification.  An update first descends like a
search (R locks, lock-coupling) and W-locks only the leaf; if the leaf is
unsafe it releases everything and re-descends with W locks.  The paper
models the second pass as a separate *redo* operation class arriving at
rate ``q_i Pr[F(1)] lambda`` (redo-deletes are negligible because
``Pr[Em] ~= 0`` under merge-at-empty).

Consequences for the per-level queues:

* readers at every level are *all* first descents (searches and updates);
  at level 2 an updating reader holds its R lock across the leaf W-lock
  wait, so its hold time uses ``W(1)`` instead of ``R(1)``;
* writers above the leaves are only the redo operations, which behave
  exactly like Naive Lock-coupling inserts (Theorem 3's hyperexponential
  server applies);
* at the leaves, writers are the first-descent updates plus the redos.

The ``leaf_hold_extra`` / ``internal_hold_extra`` parameters implement the
Section 7 recovery extension: they add lock *retention* time (until the
enclosing transaction commits) to the W-lock holds.  See
:mod:`repro.model.recovery`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algorithms import names
from repro.errors import ConfigurationError, UnstableQueueError
from repro.model.mg1 import LockCouplingServer
from repro.model.occupancy import OccupancyModel
from repro.model.params import ModelConfig
from repro.model.results import (
    DELETE,
    INSERT,
    SEARCH,
    AlgorithmPrediction,
    LevelSolution,
    unstable_prediction,
)
from repro.model.rwqueue import RWQueueInput, solve_rw_queue

ALGORITHM = names.OPTIMISTIC_DESCENT


def analyze_optimistic(config: ModelConfig, arrival_rate: float,
                       occupancy: Optional[OccupancyModel] = None,
                       leaf_hold_extra: float = 0.0,
                       internal_hold_extra: Optional[Sequence[float]] = None,
                       ) -> AlgorithmPrediction:
    """Predict Optimistic Descent performance at ``arrival_rate``.

    ``leaf_hold_extra`` is added to every leaf W-lock hold;
    ``internal_hold_extra[i-1]`` (indexed by level) is added to the W-lock
    hold at level i >= 2.  Both default to zero (no recovery retention).
    """
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {arrival_rate}")

    mix, costs, shape = config.mix, config.costs, config.shape
    h = shape.height
    occ = occupancy if occupancy is not None \
        else OccupancyModel.corollary1(mix, config.order, h)
    extras = list(internal_hold_extra) if internal_hold_extra is not None \
        else [0.0] * h
    if len(extras) != h:
        raise ConfigurationError(
            f"internal_hold_extra needs {h} entries, got {len(extras)}")

    se = [costs.se(level, h) for level in range(1, h + 1)]
    sp = [costs.sp(level, h) for level in range(1, h + 1)]
    modify = costs.modify(h)

    lam = [arrival_rate * shape.arrival_share(level)
           for level in range(1, h + 1)]
    # Fraction of all operations that redo (make a W-lock second descent).
    redo_fraction = (mix.q_insert * occ.full(1)
                     + mix.q_delete * occ.empty(1))

    t_redo: List[float] = []     # W-lock hold of a redo op at each level
    levels: List[LevelSolution] = []

    for level in range(1, h + 1):
        i = level - 1
        if level == 1:
            t_x = modify + leaf_hold_extra
            mu_r = 1.0 / se[0]
            lam_r = mix.q_search * lam[0]
            # First descents W-lock the leaf too; they hold it for the
            # modify (plus any recovery retention), same as a redo.
            lam_w = (mix.q_update + redo_fraction) * lam[0]
            mu_w = 1.0 / t_x
        else:
            below = levels[i - 1]
            t_x = (se[i] + below.W
                   + occ.full(level - 1) * t_redo[i - 1]
                   + sp[i - 1] * occ.split_propagation(level - 1)
                   + extras[i])
            # Readers: all first descents.  At level 2 the updaters hold
            # their R lock while waiting for the leaf W lock.
            if level == 2:
                hold_r = (mix.q_search * (se[i] + below.R)
                          + mix.q_update * (se[i] + below.W))
            else:
                hold_r = se[i] + below.R
            mu_r = 1.0 / hold_r
            lam_r = lam[i]
            lam_w = redo_fraction * lam[i]
            mu_w = 1.0 / t_x
        t_redo.append(t_x)

        try:
            queue = solve_rw_queue(
                RWQueueInput(lambda_r=lam_r, lambda_w=lam_w,
                             mu_r=mu_r, mu_w=mu_w),
                level=level,
            )
        except UnstableQueueError:
            return unstable_prediction(ALGORITHM, arrival_rate, level)

        drain = queue.mean_reader_drain
        if level == 1 or lam_w == 0.0:
            wait_r = (queue.rho_w / (1.0 - queue.rho_w)
                      * (1.0 / mu_w + drain)) if lam_w > 0 else 0.0
        else:
            below = levels[i - 1]
            # Redo operations lock-couple, so Theorem 3's server applies.
            # All redos are effectively inserts (Pr[Em] ~= 0).
            p_f = occ.full(level - 1)
            inv_mu_o = (below.R / below.rho_w + below.r_u) \
                if below.rho_w > 0.0 else 0.0
            server = LockCouplingServer(
                t_e=se[i] + drain,
                p_f=p_f,
                t_f=t_redo[i - 1] + sp[i - 1] * occ.split_propagation(level - 2),
                rho_o=below.rho_w,
                inv_mu_o=inv_mu_o,
                r_e_child=below.r_e,
            )
            wait_r = server.wait(lam_w, queue.rho_w)
        wait_w = wait_r + drain

        levels.append(LevelSolution(
            level=level, lambda_r=lam_r, lambda_w=lam_w,
            mu_r=mu_r, mu_w=mu_w, rho_w=queue.rho_w,
            r_u=queue.r_u, r_e=queue.r_e, R=wait_r, W=wait_w,
        ))

    responses = _responses(levels, se, sp, modify, occ, mix, h)
    return AlgorithmPrediction(
        algorithm=ALGORITHM, arrival_rate=arrival_rate, stable=True,
        levels=levels, response_times=responses,
    )


def _responses(levels: List[LevelSolution], se: List[float],
               sp: List[float], modify: float, occ: OccupancyModel,
               mix, h: int) -> dict:
    """Response times: first descent plus Pr[F(1)] times a redo descent.

    The redo descent is a Naive Lock-coupling insert (Theorem 5's Per(I))
    evaluated with *this* system's lock waits.
    """
    per_search = sum(se[i] + levels[i].R for i in range(h))
    first_descent = (modify + levels[0].W
                     + sum(se[i] + levels[i].R for i in range(1, h)))
    redo_insert = (modify
                   + sum(se[i] for i in range(1, h))
                   + sum(level.W for level in levels)
                   + sum(occ.split_propagation(j) * sp[j - 1]
                         for j in range(1, h)))
    per_insert = first_descent + occ.full(1) * redo_insert
    per_delete = first_descent + occ.empty(1) * redo_insert
    return {SEARCH: per_search, INSERT: per_insert, DELETE: per_delete}
