"""Recovery extensions of the analysis (paper Section 7).

A transaction-processing database retains a transaction's exclusive locks
until the transaction commits, so B-tree W locks may be held far beyond
the B-tree operation itself.  The paper compares three policies on top of
Optimistic Descent:

* **No recovery** — the baseline: locks are released as the algorithm
  finishes with them.
* **Naive recovery** — every W lock (leaf or internal) is retained until
  commit.  The paper models the internal-lock retention as an extra
  ``Pr[F(i)] * T_trans`` on the level-i W hold (an internal lock is only
  retained long when the node was actually restructured).
* **Leaf-only recovery** (Shasha) — only leaf W locks are retained
  (``T(OP,1) + T_trans``); internal locks are released immediately, which
  is sufficient for correct recovery.

``T_trans`` is the expected remaining transaction time after the B-tree
operation (the paper uses 100 time units as a conservative value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algorithms import names
from repro.errors import ConfigurationError
from repro.model.occupancy import OccupancyModel
from repro.model.optimistic import analyze_optimistic
from repro.model.params import ModelConfig
from repro.model.results import AlgorithmPrediction

#: The paper's conservative remaining-transaction-time estimate.
PAPER_T_TRANS = 100.0


@dataclass(frozen=True)
class RecoveryPolicy:
    """Which W locks a transaction retains until commit."""

    name: str
    retain_leaf: bool
    retain_internal: bool

    def __str__(self) -> str:
        return self.name


NO_RECOVERY = RecoveryPolicy("no-recovery", retain_leaf=False,
                             retain_internal=False)
LEAF_ONLY_RECOVERY = RecoveryPolicy("leaf-only-recovery", retain_leaf=True,
                                    retain_internal=False)
NAIVE_RECOVERY = RecoveryPolicy("naive-recovery", retain_leaf=True,
                                retain_internal=True)

ALL_POLICIES = (NO_RECOVERY, LEAF_ONLY_RECOVERY, NAIVE_RECOVERY)


def analyze_optimistic_with_recovery(
        config: ModelConfig, arrival_rate: float,
        policy: RecoveryPolicy = NO_RECOVERY,
        t_trans: float = PAPER_T_TRANS,
        occupancy: Optional[OccupancyModel] = None,
        ) -> AlgorithmPrediction:
    """Optimistic Descent under a recovery lock-retention policy.

    Implements the paper's T' transformation: leaf W holds gain
    ``T_trans`` whenever leaf locks are retained; level-i W holds gain
    ``Pr[F(i)] * T_trans`` under Naive recovery.
    """
    if t_trans < 0:
        raise ConfigurationError(f"t_trans must be >= 0, got {t_trans}")
    h = config.height
    occ = occupancy if occupancy is not None \
        else OccupancyModel.corollary1(config.mix, config.order, h)
    leaf_extra = t_trans if policy.retain_leaf else 0.0
    extras = [0.0] * h
    if policy.retain_internal:
        for level in range(2, h + 1):
            extras[level - 1] = occ.full(level) * t_trans
    prediction = analyze_optimistic(
        config, arrival_rate, occupancy=occ,
        leaf_hold_extra=leaf_extra, internal_hold_extra=extras,
    )
    # Re-label so comparison plots can tell the policies apart.
    return AlgorithmPrediction(
        algorithm=f"{names.OPTIMISTIC_DESCENT}+{policy.name}",
        arrival_rate=prediction.arrival_rate,
        stable=prediction.stable,
        levels=prediction.levels,
        response_times=prediction.response_times,
        saturated_level=prediction.saturated_level,
    )
