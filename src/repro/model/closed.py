"""Closed-system predictions from the open-system model.

The paper analyses an open system; its introduction, though, motivates
everything with a *closed* one (a fixed multiprogramming level around
100).  The two are connected by the classic flow-equivalent
approximation / interactive response-time law: with N terminals, think
time Z and mix-weighted response time R(X) at throughput X,

.. math::  X = N / (R(X) + Z)

whose fixed point (capped by the open system's maximum throughput,
Theorem 2) predicts the closed system's operating point.  This is the
analytical counterpart of :mod:`repro.simulator.closed` and of the
``ext04`` experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError, ConvergenceError
from repro.model.params import ModelConfig
from repro.model.results import AlgorithmPrediction
from repro.model.throughput import max_throughput

Analyzer = Callable[..., AlgorithmPrediction]


@dataclass(frozen=True)
class ClosedSystemPrediction:
    """Predicted operating point of a closed system."""

    multiprogramming_level: int
    think_time: float
    throughput: float
    #: Mix-weighted mean response time at the operating point.
    response_time: float
    #: The open system's maximum throughput (the plateau).
    capacity: float

    @property
    def saturated(self) -> bool:
        """True when the population pushes the system onto its plateau
        (throughput within 2% of capacity)."""
        return self.throughput >= 0.98 * self.capacity


def _mixed_response(prediction: AlgorithmPrediction,
                    config: ModelConfig) -> float:
    mix = config.mix
    return (mix.q_search * prediction.response("search")
            + mix.q_insert * prediction.response("insert")
            + mix.q_delete * prediction.response("delete"))


def closed_system_prediction(analyzer: Analyzer, config: ModelConfig,
                             multiprogramming_level: int,
                             think_time: float = 0.0,
                             rel_tol: float = 1e-6,
                             max_iterations: int = 500,
                             **analyzer_kwargs) -> ClosedSystemPrediction:
    """Solve the interactive response-time fixed point for ``analyzer``.

    Damped iteration on ``X <- N / (R(X) + Z)``, with X confined below
    the open model's maximum throughput (beyond which R is infinite).
    On the plateau the fixed point sits at the capacity itself and the
    response time follows from the response-time law
    ``R = N / X - Z``.
    """
    if multiprogramming_level < 1:
        raise ConfigurationError(
            f"multiprogramming level must be >= 1, got "
            f"{multiprogramming_level}")
    if think_time < 0:
        raise ConfigurationError(f"think_time must be >= 0, got {think_time}")

    capacity = max_throughput(analyzer, config, **analyzer_kwargs)
    n = multiprogramming_level

    def response_at(x: float) -> float:
        prediction = analyzer(config, x, **analyzer_kwargs)
        if not prediction.stable:
            return math.inf
        r = _mixed_response(prediction, config)
        if math.isnan(r):
            raise ConvergenceError(
                f"mix-weighted response is NaN at throughput {x:.6g}",
                solver="closed-system",
                context={"throughput": x,
                         "multiprogramming_level": multiprogramming_level})
        return r

    # The fixed point solves g(x) = x * (R(x) + Z) - N = 0; g is
    # strictly increasing in x (R is), so bisection is exact.  When even
    # the capacity cannot carry the population — g(capacity-) < 0 — the
    # system sits on the plateau: X = capacity and the response-time law
    # R = N/X - Z gives the (linearly growing) response.
    ceiling = 0.999 * capacity

    def g(x: float) -> float:
        r = response_at(x)
        if math.isinf(r):
            return math.inf
        return x * (r + think_time) - n

    if g(ceiling) < 0.0:
        x = capacity
        response = n / x - think_time
        return ClosedSystemPrediction(
            multiprogramming_level=n, think_time=think_time,
            throughput=x, response_time=response, capacity=capacity,
        )
    lo, hi = 1e-12, ceiling
    for iteration in range(max_iterations):
        if hi - lo <= rel_tol * hi:
            break
        mid = 0.5 * (lo + hi)
        if g(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    else:  # pragma: no cover - bisection halves 500 times
        raise ConvergenceError(
            "closed-system fixed point did not converge",
            solver="closed-system", iterations=max_iterations,
            residual=hi - lo,
            context={"multiprogramming_level": multiprogramming_level,
                     "think_time": think_time})
    x = 0.5 * (lo + hi)
    response = response_at(x)
    return ClosedSystemPrediction(
        multiprogramming_level=n, think_time=think_time,
        throughput=x, response_time=response, capacity=capacity,
    )
