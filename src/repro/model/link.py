"""Analysis of the Link-type (Lehman-Yao) algorithm (paper Section 5.1).

With right links there is no lock coupling: at most one lock is held at a
time, so every level is an *independent* FCFS R/W queue:

* every operation R-locks one node per level on the way down, so the
  per-node reader arrival rate at level i is the total rate divided by
  the number of level-i nodes;
* W locks appear at the leaves for every update, and at level i > 1 only
  when a child half-splits — rate ``q_i * lambda * prod_{k<i} Pr[F(k)]``
  spread over the level's nodes;
* an R lock is held for the node search time only, a W lock for the node
  modify plus (with probability Pr[F(i)]) the half-split.

Because the hold times are short and coupled to nothing, the waits use
Theorem 4's exponential-aggregate form.  Link crossings slightly raise
the arrival rates; the paper observes (Figure 9) that the effect is
negligible, and :func:`link_crossing_probability` provides the
back-of-envelope rate estimate that justifies neglecting it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algorithms import names
from repro.errors import ConfigurationError, UnstableQueueError
from repro.model.occupancy import OccupancyModel
from repro.model.params import ModelConfig
from repro.model.results import (
    DELETE,
    INSERT,
    SEARCH,
    AlgorithmPrediction,
    LevelSolution,
    unstable_prediction,
)
from repro.model.rwqueue import RWQueueInput, solve_rw_queue

ALGORITHM = names.LINK_TYPE


def analyze_link(config: ModelConfig, arrival_rate: float,
                 occupancy: Optional[OccupancyModel] = None,
                 ) -> AlgorithmPrediction:
    """Predict Link-type performance at ``arrival_rate``."""
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {arrival_rate}")

    mix, costs, shape = config.mix, config.costs, config.shape
    h = shape.height
    occ = occupancy if occupancy is not None \
        else OccupancyModel.corollary1(mix, config.order, h)

    se = [costs.se(level, h) for level in range(1, h + 1)]
    sp = [costs.sp(level, h) for level in range(1, h + 1)]
    modify = [costs.modify_at(level, h) for level in range(1, h + 1)]

    levels: List[LevelSolution] = []
    for level in range(1, h + 1):
        i = level - 1
        share = shape.arrival_share(level)
        if level == 1:
            lam_r = mix.q_search * arrival_rate * share
            lam_w = mix.q_update * arrival_rate * share
        else:
            lam_r = arrival_rate * share
            # W locks arrive when a child completes a half-split.
            lam_w = (mix.q_insert * arrival_rate
                     * occ.split_propagation(level - 1) * share)
        mu_r = 1.0 / se[i]
        hold_w = modify[i] + occ.full(level) * sp[i]
        mu_w = 1.0 / hold_w

        try:
            queue = solve_rw_queue(
                RWQueueInput(lambda_r=lam_r, lambda_w=lam_w,
                             mu_r=mu_r, mu_w=mu_w),
                level=level,
            )
        except UnstableQueueError:
            return unstable_prediction(ALGORITHM, arrival_rate, level)

        drain = queue.mean_reader_drain
        wait_r = (queue.rho_w / (1.0 - queue.rho_w)
                  * (1.0 / mu_w + drain)) if lam_w > 0 else 0.0
        wait_w = wait_r + drain
        levels.append(LevelSolution(
            level=level, lambda_r=lam_r, lambda_w=lam_w,
            mu_r=mu_r, mu_w=mu_w, rho_w=queue.rho_w,
            r_u=queue.r_u, r_e=queue.r_e, R=wait_r, W=wait_w,
        ))

    responses = _responses(levels, se, sp, modify, occ, h)
    return AlgorithmPrediction(
        algorithm=ALGORITHM, arrival_rate=arrival_rate, stable=True,
        levels=levels, response_times=responses,
    )


def _responses(levels: List[LevelSolution], se: List[float],
               sp: List[float], modify: List[float],
               occ: OccupancyModel, h: int) -> dict:
    """Response times: a plain descent plus the expected split climb.

    A split at level j costs the half-split itself (``Sp(j)``, paid under
    the level-j W lock) and then a W lock + modify at level j+1; the climb
    continues with probability Pr[F(j+1)].
    """
    per_search = sum(se[i] + levels[i].R for i in range(h))
    descent = (modify[0] + levels[0].W
               + sum(se[i] + levels[i].R for i in range(1, h)))
    climb = 0.0
    for j in range(1, h):
        step = sp[j - 1] + levels[j].W + modify[j]
        climb += occ.split_propagation(j) * step
    per_insert = descent + climb
    per_delete = descent
    return {SEARCH: per_search, INSERT: per_insert, DELETE: per_delete}


def link_crossing_probability(config: ModelConfig, arrival_rate: float,
                              level: int,
                              occupancy: Optional[OccupancyModel] = None,
                              ) -> float:
    """Order-of-magnitude estimate of the probability that a descent must
    chase a right link at ``level``.

    A crossing happens when the target node half-splits between the
    moment the parent was read and the moment the node is read.  That
    window is about one node access; the per-node split rate at the level
    is ``q_i * lambda * prod_{k<=level} Pr[F(k)] / nodes_at(level)``.
    The product of the two is tiny, which is the paper's Figure 9 point.
    """
    mix, costs, shape = config.mix, config.costs, config.shape
    h = shape.height
    if not 1 <= level <= h:
        raise ConfigurationError(f"no level {level} in height-{h} tree")
    occ = occupancy if occupancy is not None \
        else OccupancyModel.corollary1(mix, config.order, h)
    split_rate_per_node = (mix.q_insert * arrival_rate
                           * occ.split_propagation(level)
                           * shape.arrival_share(level))
    window = costs.se(level, h)
    return min(1.0, split_rate_per_node * window)


def expected_crossings_per_descent(config: ModelConfig,
                                   arrival_rate: float,
                                   occupancy: Optional[OccupancyModel] = None,
                                   ) -> float:
    """Expected link crossings over one whole root-to-leaf descent —
    the sum of the per-level probabilities, directly comparable with
    the simulator's crossings-per-operation counter (Figure 9)."""
    return sum(
        link_crossing_probability(config, arrival_rate, level,
                                  occupancy=occupancy)
        for level in range(1, config.height + 1)
    )
