"""Analysis of the Naive Lock-coupling algorithm (paper Section 5).

The computation follows the paper's summary exactly:

1. leaves first — lock hold times (Theorem 1, level 1), the FCFS R/W
   queue fixed point (Theorem 6), and the M/M/1-style waits (Theorem 4);
2. then each level upward — hold times via Theorem 1 (which consume the
   waits of the level below, because lock-coupling makes a level-i hold
   include the wait for level i-1), the queue fixed point, and the
   hyperexponential M/G/1 waits of Theorem 3 (Figure 2's server);
3. finally the operation response times of Theorem 5.

Inserts and deletes always place W locks, so they are the queue's writer
class; searches are the reader class (Proposition 1).  Arrival rates thin
by the fanout from level to level (Proposition 2).

``service_model="exponential"`` replaces the Theorem 3 hyperexponential
server with Theorem 4's exponential approximation at every level; it
exists for the ablation benchmark that shows why the heavier machinery is
needed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algorithms import names
from repro.errors import ConfigurationError, UnstableQueueError
from repro.model.mg1 import LockCouplingServer
from repro.model.occupancy import OccupancyModel
from repro.model.params import ModelConfig
from repro.model.results import (
    DELETE,
    INSERT,
    SEARCH,
    AlgorithmPrediction,
    LevelSolution,
    unstable_prediction,
)
from repro.model.rwqueue import RWQueueInput, solve_rw_queue

ALGORITHM = names.NAIVE_LOCK_COUPLING

_SERVICE_MODELS = ("hyperexponential", "exponential")


def analyze_lock_coupling(config: ModelConfig, arrival_rate: float,
                          occupancy: Optional[OccupancyModel] = None,
                          service_model: str = "hyperexponential",
                          ) -> AlgorithmPrediction:
    """Predict response times and per-level queue state for Naive
    Lock-coupling at ``arrival_rate``.

    Returns an unstable prediction (infinite response times, with the
    saturated level recorded) instead of raising when some queue cannot
    sustain the load — sweeps past the knee are routine in the figures.
    """
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {arrival_rate}")
    if service_model not in _SERVICE_MODELS:
        raise ConfigurationError(
            f"service_model must be one of {_SERVICE_MODELS}, got {service_model!r}")

    mix, costs, shape = config.mix, config.costs, config.shape
    h = shape.height
    occ = occupancy if occupancy is not None \
        else OccupancyModel.corollary1(mix, config.order, h)

    se = [costs.se(level, h) for level in range(1, h + 1)]        # Se(i)
    sp = [costs.sp(level, h) for level in range(1, h + 1)]        # Sp(i)
    mg = [costs.mg(level, h) for level in range(1, h + 1)]        # Mg(i)
    modify = costs.modify(h)                                      # M

    # Per-level arrival rates (Proposition 2); index 0 = level 1 (leaves).
    lam = [arrival_rate * shape.arrival_share(level)
           for level in range(1, h + 1)]

    t_search: List[float] = []   # T(S, i)
    t_insert: List[float] = []   # T(I, i)
    t_delete: List[float] = []   # T(D, i)
    levels: List[LevelSolution] = []

    for level in range(1, h + 1):
        i = level - 1
        if level == 1:
            t_s, t_i, t_d = se[0], modify, modify
        else:
            below = levels[i - 1]
            t_s = se[i] + below.R
            t_i = (se[i] + below.W
                   + occ.full(level - 1) * t_insert[i - 1]
                   + sp[i - 1] * occ.split_propagation(level - 1))
            t_d = (se[i] + below.W
                   + occ.empty(level - 1) * t_delete[i - 1]
                   + mg[i - 1] * occ.merge_propagation(level - 1))
        t_search.append(t_s)
        t_insert.append(t_i)
        t_delete.append(t_d)

        # Proposition 1: service rates of the reader / writer classes.
        mu_r = 1.0 / t_s
        w_hold = mix.insert_share * t_i + mix.delete_share * t_d
        mu_w = 1.0 / w_hold if w_hold > 0 else 0.0
        lam_r = mix.q_search * lam[i]
        lam_w = mix.q_update * lam[i]

        try:
            queue = solve_rw_queue(
                RWQueueInput(lambda_r=lam_r, lambda_w=lam_w,
                             mu_r=mu_r, mu_w=mu_w),
                level=level,
            )
        except UnstableQueueError:
            return unstable_prediction(ALGORITHM, arrival_rate, level)

        drain = queue.mean_reader_drain
        if level == 1 or service_model == "exponential" or lam_w == 0.0:
            # Theorem 4: exponential aggregate service.
            wait_r = (queue.rho_w / (1.0 - queue.rho_w)
                      * (1.0 / mu_w + drain)) if lam_w > 0 else 0.0
        else:
            below = levels[i - 1]
            server = _theorem3_server(
                se_i=se[i], queue_drain=drain, occ=occ, level=level,
                mix=mix, t_insert_below=t_insert[i - 1],
                sp_below=sp[i - 1], below=below,
            )
            wait_r = server.wait(lam_w, queue.rho_w)
        wait_w = wait_r + drain

        levels.append(LevelSolution(
            level=level, lambda_r=lam_r, lambda_w=lam_w,
            mu_r=mu_r, mu_w=mu_w, rho_w=queue.rho_w,
            r_u=queue.r_u, r_e=queue.r_e, R=wait_r, W=wait_w,
        ))

    responses = _theorem5_responses(levels, se, sp, modify, occ, h)
    return AlgorithmPrediction(
        algorithm=ALGORITHM, arrival_rate=arrival_rate, stable=True,
        levels=levels, response_times=responses,
    )


def _theorem3_server(se_i: float, queue_drain: float, occ: OccupancyModel,
                     level: int, mix, t_insert_below: float,
                     sp_below: float, below: LevelSolution,
                     ) -> LockCouplingServer:
    """Assemble the Figure 2 hyperexponential server for ``level``.

    ``t_f`` is read as a *time* (the paper's definition inverts it, but
    the Laplace transform and moment formula require the time; see
    DESIGN.md).  The propagation product excludes level-1..(level-2)
    because ``p_f`` already carries Pr[F(level-1)].
    """
    p_f = mix.insert_share * occ.full(level - 1)
    rho_o = below.rho_w
    t_e = se_i + queue_drain
    t_f = t_insert_below + sp_below * occ.split_propagation(level - 2)
    inv_mu_o = (below.R / rho_o + below.r_u) if rho_o > 0.0 else 0.0
    return LockCouplingServer(
        t_e=t_e, p_f=p_f, t_f=t_f, rho_o=rho_o,
        inv_mu_o=inv_mu_o, r_e_child=below.r_e,
    )


def _theorem5_responses(levels: List[LevelSolution], se: List[float],
                        sp: List[float], modify: float,
                        occ: OccupancyModel, h: int) -> dict:
    """Operation response times (Theorem 5)."""
    per_search = sum(se[i] + levels[i].R for i in range(h))
    per_delete = modify + levels[0].W + sum(
        se[i] + levels[i].W for i in range(1, h))
    split_work = sum(occ.split_propagation(j) * sp[j - 1]
                     for j in range(1, h))
    per_insert = (modify
                  + sum(se[i] for i in range(1, h))
                  + sum(level.W for level in levels)
                  + split_work)
    return {SEARCH: per_search, INSERT: per_insert, DELETE: per_delete}
