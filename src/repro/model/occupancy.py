"""Node-occupancy probabilities: Pr[F(i)], Pr[Em(i)] and E(i).

These are the restructuring inputs of the framework, taken from the
paper's Corollary 1 (which itself summarises Johnson & Shasha's B-tree
utilization results, refs [9] and [10]):

* With at least 5% more inserts than deletes in the mix and a
  merge-at-empty tree,

  - ``Pr[F(1)] = (1 - 2q) / ((1 - q) * 0.68 * N)`` where ``q`` is the
    delete fraction among updates (``q_d / (q_i + q_d)``),
  - ``Pr[F(j)] = 1 / (0.69 * N)`` for 1 < j <= h,
  - ``Pr[Em(j)] ~= 0`` (leaf merges are almost never triggered and
    propagated merges are "infinitely" rarer).

* The effective fanout below the root is 0.69 N (the ln 2 fill factor of
  random B-trees).

The class also accepts measured probabilities from an actual tree, which
the integration tests use to cross-check the closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.btree.stats import TreeStatistics
from repro.errors import ConfigurationError
from repro.model.params import OperationMix

#: Fill-factor constant in Corollary 1's leaf formula.
LEAF_FILL = 0.68
#: Fill-factor constant for the levels above the leaves (ln 2 rounded as
#: the paper rounds it).
INTERNAL_FILL = 0.69


def pr_full_leaf(mix: OperationMix, order: int) -> float:
    """Corollary 1: probability that a leaf is insert-unsafe (full)."""
    q = mix.delete_share
    if q >= 0.5:
        raise ConfigurationError(
            "Corollary 1 requires more inserts than deletes "
            f"(delete share {q:.3f} >= 0.5)"
        )
    return (1.0 - 2.0 * q) / ((1.0 - q) * LEAF_FILL * order)


def pr_full_internal(order: int) -> float:
    """Corollary 1: probability that a non-leaf node is full (the
    pure-insert-tree value)."""
    return 1.0 / (INTERNAL_FILL * order)


@dataclass(frozen=True)
class OccupancyModel:
    """Per-level insert-unsafe / delete-unsafe probabilities.

    ``pr_full[i-1]`` is Pr[F(i)] for levels i = 1..h.  ``pr_empty`` is
    Pr[Em(i)], zero by default per Corollary 1.
    """

    pr_full: Sequence[float]
    pr_empty: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.pr_full) != len(self.pr_empty):
            raise ConfigurationError("pr_full and pr_empty lengths differ")
        for p in list(self.pr_full) + list(self.pr_empty):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"probability {p} outside [0, 1]")

    @property
    def height(self) -> int:
        return len(self.pr_full)

    def full(self, level: int) -> float:
        """Pr[F(level)]."""
        return self.pr_full[level - 1]

    def empty(self, level: int) -> float:
        """Pr[Em(level)]."""
        return self.pr_empty[level - 1]

    def split_propagation(self, top_level: int) -> float:
        """``prod_{k=1..top_level} Pr[F(k)]`` — probability that an insert
        splits every node up to and including ``top_level``."""
        product = 1.0
        for level in range(1, top_level + 1):
            product *= self.full(level)
        return product

    def merge_propagation(self, top_level: int) -> float:
        """``prod_{k=1..top_level} Pr[Em(k)]``."""
        product = 1.0
        for level in range(1, top_level + 1):
            product *= self.empty(level)
        return product

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def corollary1(cls, mix: OperationMix, order: int,
                   height: int) -> "OccupancyModel":
        """The paper's closed-form occupancy (Corollary 1)."""
        full = [pr_full_leaf(mix, order)]
        full.extend(pr_full_internal(order) for _ in range(height - 1))
        empty = [0.0] * height
        return cls(pr_full=tuple(full), pr_empty=tuple(empty))

    @classmethod
    def measured(cls, stats: TreeStatistics) -> "OccupancyModel":
        """Empirical occupancy taken from an actual tree's statistics."""
        full = tuple(stats.fraction_full(level)
                     for level in range(1, stats.height + 1))
        empty = tuple(level_stat.fraction_delete_unsafe
                      for level_stat in stats.levels)
        return cls(pr_full=full, pr_empty=empty)

    @classmethod
    def uniform(cls, pr_full: float, height: int,
                pr_empty: float = 0.0) -> "OccupancyModel":
        """Constant probabilities across levels (tests and ablations)."""
        return cls(pr_full=(pr_full,) * height,
                   pr_empty=(pr_empty,) * height)


def effective_fanout(order: int) -> float:
    """Expected children per internal node below the root: 0.69 N."""
    return INTERNAL_FILL * order


def expected_split_rate(mix: OperationMix, occupancy: OccupancyModel,
                        arrival_rate: float, level: int) -> float:
    """Global rate of splits at ``level``: inserts whose split propagates
    through all the levels below and including ``level``."""
    if level < 1:
        raise ConfigurationError(f"level must be >= 1, got {level}")
    return (mix.q_insert * arrival_rate
            * occupancy.split_propagation(level))


def utilization_headroom(occupancy: OccupancyModel) -> float:
    """Summary scalar: geometric mean of (1 - Pr[F(i)]) across levels;
    near 1 means restructuring is rare everywhere."""
    product = 1.0
    for level in range(1, occupancy.height + 1):
        product *= (1.0 - occupancy.full(level))
    return product ** (1.0 / occupancy.height)
