"""Single-server queueing building blocks.

* :func:`mm1_wait` — the M/M/1 queueing delay used at the leaves
  (paper Theorem 4).
* :func:`pollaczek_khinchine_wait` — the M/G/1 delay
  ``W = lambda * E[X^2] / (2 (1 - rho))`` used with the hyperexponential
  lock-coupling server (paper Theorem 3, equation (1)).
* :class:`LockCouplingServer` — the three-stage hyperexponential server of
  paper Figure 2 with the exact second moment obtained from its Laplace
  transform (equation (2)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, UnstableQueueError


def mm1_wait(arrival_rate: float, service_rate: float) -> float:
    """Expected M/M/1 queueing delay ``rho / ((1 - rho) mu)``."""
    if service_rate <= 0:
        raise ConfigurationError("service rate must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise UnstableQueueError(f"M/M/1 utilization {rho:.4f} >= 1")
    return rho / ((1.0 - rho) * service_rate)


def pollaczek_khinchine_wait(arrival_rate: float, second_moment: float,
                             utilization: float) -> float:
    """Expected M/G/1 queueing delay ``lambda E[X^2] / (2 (1 - rho))``."""
    if utilization >= 1.0:
        raise UnstableQueueError(f"M/G/1 utilization {utilization:.4f} >= 1")
    if second_moment < 0:
        raise ConfigurationError("second moment must be non-negative")
    return arrival_rate * second_moment / (2.0 * (1.0 - utilization))


@dataclass(frozen=True)
class LockCouplingServer:
    """The hyperexponential W-lock server of paper Figure 2 / Theorem 3.

    A W lock at level i is held for:

    1. an exponential "everyone" stage with mean ``t_e`` — searching the
       node plus draining the readers ahead;
    2. with probability ``p_f`` (the child is insert-unsafe), a stage with
       mean ``t_f`` — holding through the child's own lock service and
       the split that may climb into it;
    3. the wait for the child's lock: with probability ``rho_o`` the
       child's queue already had a writer (exponential stage with mean
       ``1/mu_o``), otherwise only the reader drain ``r_e_child``.

    ``second_moment`` evaluates the paper's equation (2),
    ``B*(2)(0) = 2 [t_o t_e + p_f t_f t_e + t_e^2 + p_f t_o t_f +
    rho_o/mu_o^2 + p_f t_f^2 + (1 - rho_o) r_e_child^2]``.
    """

    t_e: float
    p_f: float
    t_f: float
    rho_o: float
    inv_mu_o: float
    r_e_child: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_f <= 1.0:
            raise ConfigurationError(f"p_f={self.p_f} outside [0, 1]")
        if not 0.0 <= self.rho_o <= 1.0:
            raise ConfigurationError(f"rho_o={self.rho_o} outside [0, 1]")

    @property
    def t_o(self) -> float:
        """Mean of the child-lock-wait stage:
        ``rho_o / mu_o + (1 - rho_o) r_e_child``."""
        return self.rho_o * self.inv_mu_o + (1.0 - self.rho_o) * self.r_e_child

    @property
    def mean(self) -> float:
        """Expected total service time ``t_e + p_f t_f + t_o``."""
        return self.t_e + self.p_f * self.t_f + self.t_o

    @property
    def second_moment(self) -> float:
        """E[X^2] from the twice-differentiated Laplace transform."""
        t_o = self.t_o
        bracket = (
            t_o * self.t_e
            + self.p_f * self.t_f * self.t_e
            + self.t_e ** 2
            + self.p_f * t_o * self.t_f
            + self.rho_o * self.inv_mu_o ** 2
            + self.p_f * self.t_f ** 2
            + (1.0 - self.rho_o) * self.r_e_child ** 2
        )
        return 2.0 * bracket

    @property
    def scv(self) -> float:
        """Squared coefficient of variation (> 1: more variable than
        exponential, the reason Theorem 3 exists)."""
        m = self.mean
        if m == 0.0:
            return 0.0
        return self.second_moment / m ** 2 - 1.0

    def wait(self, lambda_w: float, rho_w: float) -> float:
        """Theorem 3's queueing delay
        ``R(i) = lambda_w / (1 - rho_w) * [bracket]``."""
        return pollaczek_khinchine_wait(lambda_w, self.second_moment, rho_w)


def exponential_second_moment(mean: float) -> float:
    """E[X^2] = 2 m^2 for an exponential with mean ``m``."""
    return 2.0 * mean * mean


def saturating(value: float) -> float:
    """Map NaN to +inf so saturated predictions sort last in sweeps."""
    if math.isnan(value):
        return math.inf
    return value
