"""The paper's analytical framework (primary contribution).

A concurrent B-tree is modelled as an open network of FCFS reader/writer
lock queues, one representative queue per level (paper Figure 1).  The
subpackage exposes:

* :mod:`~repro.model.params` — cost model, operation mix, tree shape.
* :mod:`~repro.model.occupancy` — Pr[F(i)], Pr[Em(i)], E(i) (Corollary 1).
* :mod:`~repro.model.rwqueue` — the FCFS R/W queue fixed point (Theorem 6).
* :mod:`~repro.model.lock_coupling` — Naive Lock-coupling (Theorems 1-5).
* :mod:`~repro.model.optimistic` — Optimistic Descent (redo-insert class).
* :mod:`~repro.model.link` — the Link-type (Lehman-Yao) algorithm.
* :mod:`~repro.model.recovery` — Naive / Leaf-only recovery (Section 7).
* :mod:`~repro.model.throughput` — maximum throughput and the
  "effective maximum arrival rate" lambda_{rho=.5}.
* :mod:`~repro.model.thumb` — Rules of Thumb 1-4 (Section 6).
"""

from repro.model.params import (
    CostModel,
    ModelConfig,
    OperationMix,
    TreeShape,
    paper_default_config,
)
from repro.model.occupancy import OccupancyModel
from repro.model.results import AlgorithmPrediction, LevelSolution
from repro.model.rwqueue import RWQueueInput, RWQueueSolution, solve_rw_queue
from repro.model.lock_coupling import analyze_lock_coupling
from repro.model.optimistic import analyze_optimistic
from repro.model.link import analyze_link
from repro.model.two_phase import analyze_two_phase
from repro.model.recovery import (
    LEAF_ONLY_RECOVERY,
    NAIVE_RECOVERY,
    NO_RECOVERY,
    RecoveryPolicy,
    analyze_optimistic_with_recovery,
)
from repro.model.throughput import (
    arrival_rate_for_root_utilization,
    max_throughput,
)
from repro.model.thumb import (
    rule_of_thumb_1,
    rule_of_thumb_2,
    rule_of_thumb_3,
    rule_of_thumb_4,
)
from repro.model.validation import (
    ValidationReport,
    compare_prediction_to_simulation,
    measured_model_config,
)
from repro.model.closed import (
    ClosedSystemPrediction,
    closed_system_prediction,
)
from repro.model.workload import (
    EffectiveLoad,
    effective_load,
    piecewise_response,
)

__all__ = [
    "AlgorithmPrediction",
    "ClosedSystemPrediction",
    "closed_system_prediction",
    "CostModel",
    "EffectiveLoad",
    "LEAF_ONLY_RECOVERY",
    "LevelSolution",
    "ModelConfig",
    "NAIVE_RECOVERY",
    "NO_RECOVERY",
    "OccupancyModel",
    "OperationMix",
    "RWQueueInput",
    "RWQueueSolution",
    "RecoveryPolicy",
    "TreeShape",
    "ValidationReport",
    "analyze_link",
    "analyze_lock_coupling",
    "analyze_optimistic",
    "analyze_optimistic_with_recovery",
    "analyze_two_phase",
    "arrival_rate_for_root_utilization",
    "compare_prediction_to_simulation",
    "effective_load",
    "max_throughput",
    "measured_model_config",
    "paper_default_config",
    "piecewise_response",
    "rule_of_thumb_1",
    "rule_of_thumb_2",
    "rule_of_thumb_3",
    "rule_of_thumb_4",
    "solve_rw_queue",
]
