"""The FCFS reader/writer queue (paper appendix, Theorem 6).

Johnson's approximate analysis treats the queue through *aggregate
customers*: a writer together with all the readers immediately ahead of it
for which it must wait.  With reader/writer arrival rates
``lambda_r, lambda_w`` and service rates ``mu_r, mu_w``:

.. math::

    r_u = \\ln(1 + \\rho_w \\lambda_r / \\lambda_w) / \\mu_r

    r_e = \\ln(1 + (1 + \\rho_w)\\lambda_r / (\\mu_r + \\lambda_w)) / \\mu_r

where :math:`\\rho_w`, the probability that a writer is present, is the
root of the fixed point

.. math::

    \\rho_w = \\lambda_w\\Big(\\frac{1}{\\mu_w} + \\rho_w r_u(\\rho_w)
              + (1-\\rho_w) r_e(\\rho_w)\\Big).

The aggregate customer's service time is
:math:`T_a = 1/\\mu_w + \\rho_w r_u + (1-\\rho_w) r_e`.

``r_u`` is the reader drain a writer sees when another writer was already
queued on arrival; ``r_e`` when the queue had no writer.  The logarithm
reflects the fact that serving n concurrent readers takes
:math:`O(\\log n)` expected time (the max of n exponentials).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    UnstableQueueError,
)
from repro.resilience.faults import consume_nan_fault

#: Damped-fallback iteration cap (used only when the bracketing root
#: finder fails, e.g. a poisoned evaluation returned NaN).
_FALLBACK_MAX_ITERATIONS = 10_000
_FALLBACK_DAMPING = 0.5
#: rho is confined below this during the fallback iteration.
_RHO_CEILING = 1.0 - 1e-12


@dataclass(frozen=True)
class RWQueueInput:
    """Arrival and service rates of one FCFS R/W queue."""

    lambda_r: float
    lambda_w: float
    mu_r: float
    mu_w: float

    def __post_init__(self) -> None:
        if self.lambda_r < 0 or self.lambda_w < 0:
            raise ConfigurationError("arrival rates must be non-negative")
        if self.lambda_r > 0 and self.mu_r <= 0:
            raise ConfigurationError("readers arrive but mu_r <= 0")
        if self.lambda_w > 0 and self.mu_w <= 0:
            raise ConfigurationError("writers arrive but mu_w <= 0")


@dataclass(frozen=True)
class RWQueueSolution:
    """Fixed-point solution of Theorem 6."""

    #: Probability that a W lock is present (holding or queued).
    rho_w: float
    #: Expected reader drain seen by a writer that found another writer queued.
    r_u: float
    #: Expected reader drain seen by a writer that found no writer queued.
    r_e: float
    #: Expected service time of an aggregate customer.
    aggregate_service_time: float

    @property
    def mean_reader_drain(self) -> float:
        """rho_w * r_u + (1 - rho_w) * r_e — the reader component of the
        aggregate customer."""
        return self.rho_w * self.r_u + (1.0 - self.rho_w) * self.r_e


def _reader_drains(rho: float, q: RWQueueInput) -> tuple:
    """(r_u, r_e) at writer presence ``rho``."""
    if q.lambda_r == 0.0:
        return 0.0, 0.0
    if q.lambda_w == 0.0:
        # No writers: the drains are irrelevant; define the limiting r_e.
        r_e = math.log1p((1.0 + rho) * q.lambda_r / (q.mu_r + q.lambda_w)) / q.mu_r
        return 0.0, r_e
    r_u = math.log1p(rho * q.lambda_r / q.lambda_w) / q.mu_r
    r_e = math.log1p((1.0 + rho) * q.lambda_r / (q.mu_r + q.lambda_w)) / q.mu_r
    return r_u, r_e


def _error_context(q: RWQueueInput, level: int | None,
                   rho: float) -> dict:
    """Full operating point for a ConvergenceError: which queue, at
    what arrival/service rates, and where the solver last stood —
    enough to reproduce the failure without re-running the sweep."""
    return {"level": level, "lambda_r": q.lambda_r,
            "lambda_w": q.lambda_w, "mu_r": q.mu_r, "mu_w": q.mu_w,
            "rho_w_estimate": rho}


def _fixed_point_rhs(rho: float, q: RWQueueInput) -> float:
    if consume_nan_fault():
        return math.nan
    r_u, r_e = _reader_drains(rho, q)
    return q.lambda_w * (1.0 / q.mu_w + rho * r_u + (1.0 - rho) * r_e)


def _damped_fixed_point(q: RWQueueInput, tol: float,
                        level: int | None) -> float:
    """Fallback solver: damped iteration on ``rho <- f(rho)``.

    Used only when the bracketing root finder could not run (a fixed-
    point evaluation came back non-finite).  Non-finite evaluations are
    skipped — a transient poisoned value is retried — within the hard
    iteration cap; persistent failure raises a structured
    :class:`~repro.errors.ConvergenceError`.
    """
    rho = 0.5
    residual = math.inf
    converged = False
    iterations = 0
    for iterations in range(1, _FALLBACK_MAX_ITERATIONS + 1):
        rhs = _fixed_point_rhs(rho, q)
        if not math.isfinite(rhs):
            continue
        nxt = ((1.0 - _FALLBACK_DAMPING) * rho
               + _FALLBACK_DAMPING * min(rhs, _RHO_CEILING))
        residual = abs(nxt - rho)
        rho = nxt
        if residual <= max(tol, 1e-12):
            converged = True
            break
    if not converged:
        raise ConvergenceError(
            f"R/W queue damped fixed point did not converge within "
            f"{_FALLBACK_MAX_ITERATIONS} iterations",
            solver="rw-queue", iterations=iterations, residual=residual,
            context=_error_context(q, level, rho))
    final = _fixed_point_rhs(rho, q)
    if math.isfinite(final) and final >= _RHO_CEILING:
        # The iteration pinned rho at the ceiling: the queue has no
        # root below 1 — the usual saturation signal, not divergence.
        raise UnstableQueueError(
            f"no stable writer utilization: offered load rho_w >= 1 "
            f"(lambda_w={q.lambda_w:.6g}, mu_w={q.mu_w:.6g})",
            level=level)
    if not math.isfinite(final) or abs(final - rho) > 1e-6:
        raise ConvergenceError(
            f"R/W queue damped fixed point settled on rho={rho:.6g} "
            f"but f(rho)={final:.6g} is not a root",
            solver="rw-queue", iterations=iterations,
            residual=abs(final - rho) if math.isfinite(final)
            else math.nan,
            context=_error_context(q, level, rho))
    return rho


def solve_rw_queue(q: RWQueueInput, tol: float = 1e-12,
                   level: int | None = None) -> RWQueueSolution:
    """Solve the Theorem 6 fixed point for ``q``.

    Raises :class:`~repro.errors.UnstableQueueError` when no root exists
    in [0, 1) — i.e. the writer load saturates the queue.  ``level`` is
    attached to the exception for diagnostics.

    Guarded against numeric corruption (``docs/robustness.md``): a
    non-finite fixed-point evaluation — e.g. one poisoned by the
    fault-injection harness — diverts to a damped fallback iteration
    instead of feeding NaN into the bracketing root finder, and a
    persistent failure raises a structured
    :class:`~repro.errors.ConvergenceError` rather than propagating
    NaN into result tables.
    """
    if q.lambda_w == 0.0:
        r_u, r_e = _reader_drains(0.0, q)
        return RWQueueSolution(rho_w=0.0, r_u=r_u, r_e=r_e,
                               aggregate_service_time=0.0)

    def g(rho: float) -> float:
        return rho - _fixed_point_rhs(rho, q)

    # g(0) < 0 always (writers arrive, so f(0) > 0).  The queue is stable
    # iff g crosses zero before rho = 1.
    upper = _RHO_CEILING
    g_upper = g(upper)
    if math.isfinite(g_upper):
        if g_upper <= 0.0:
            raise UnstableQueueError(
                f"no stable writer utilization: offered load rho_w >= 1 "
                f"(lambda_w={q.lambda_w:.6g}, mu_w={q.mu_w:.6g})",
                level=level,
            )
        try:
            rho = float(brentq(g, 0.0, upper, xtol=tol))
        except (ValueError, RuntimeError):
            rho = math.nan  # a mid-search evaluation went non-finite
    else:
        rho = math.nan
    if not (math.isfinite(rho) and 0.0 <= rho < 1.0):
        rho = _damped_fixed_point(q, tol, level)
    r_u, r_e = _reader_drains(rho, q)
    t_a = 1.0 / q.mu_w + rho * r_u + (1.0 - rho) * r_e
    if not (math.isfinite(r_u) and math.isfinite(r_e)
            and math.isfinite(t_a)):
        raise ConvergenceError(
            f"R/W queue solution is non-finite at rho={rho:.6g} "
            f"(r_u={r_u:.6g}, r_e={r_e:.6g}, T_a={t_a:.6g})",
            solver="rw-queue", residual=math.nan,
            context=_error_context(q, level, rho))
    return RWQueueSolution(rho_w=rho, r_u=r_u, r_e=r_e,
                           aggregate_service_time=t_a)


def writer_utilization(q: RWQueueInput) -> float:
    """rho_w, or +inf when the queue is saturated (convenience for
    throughput searches that probe past the stability boundary)."""
    try:
        return solve_rw_queue(q).rho_w
    except UnstableQueueError:
        return math.inf
