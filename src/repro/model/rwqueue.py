"""The FCFS reader/writer queue (paper appendix, Theorem 6).

Johnson's approximate analysis treats the queue through *aggregate
customers*: a writer together with all the readers immediately ahead of it
for which it must wait.  With reader/writer arrival rates
``lambda_r, lambda_w`` and service rates ``mu_r, mu_w``:

.. math::

    r_u = \\ln(1 + \\rho_w \\lambda_r / \\lambda_w) / \\mu_r

    r_e = \\ln(1 + (1 + \\rho_w)\\lambda_r / (\\mu_r + \\lambda_w)) / \\mu_r

where :math:`\\rho_w`, the probability that a writer is present, is the
root of the fixed point

.. math::

    \\rho_w = \\lambda_w\\Big(\\frac{1}{\\mu_w} + \\rho_w r_u(\\rho_w)
              + (1-\\rho_w) r_e(\\rho_w)\\Big).

The aggregate customer's service time is
:math:`T_a = 1/\\mu_w + \\rho_w r_u + (1-\\rho_w) r_e`.

``r_u`` is the reader drain a writer sees when another writer was already
queued on arrival; ``r_e`` when the queue had no writer.  The logarithm
reflects the fact that serving n concurrent readers takes
:math:`O(\\log n)` expected time (the max of n exponentials).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.errors import ConfigurationError, UnstableQueueError


@dataclass(frozen=True)
class RWQueueInput:
    """Arrival and service rates of one FCFS R/W queue."""

    lambda_r: float
    lambda_w: float
    mu_r: float
    mu_w: float

    def __post_init__(self) -> None:
        if self.lambda_r < 0 or self.lambda_w < 0:
            raise ConfigurationError("arrival rates must be non-negative")
        if self.lambda_r > 0 and self.mu_r <= 0:
            raise ConfigurationError("readers arrive but mu_r <= 0")
        if self.lambda_w > 0 and self.mu_w <= 0:
            raise ConfigurationError("writers arrive but mu_w <= 0")


@dataclass(frozen=True)
class RWQueueSolution:
    """Fixed-point solution of Theorem 6."""

    #: Probability that a W lock is present (holding or queued).
    rho_w: float
    #: Expected reader drain seen by a writer that found another writer queued.
    r_u: float
    #: Expected reader drain seen by a writer that found no writer queued.
    r_e: float
    #: Expected service time of an aggregate customer.
    aggregate_service_time: float

    @property
    def mean_reader_drain(self) -> float:
        """rho_w * r_u + (1 - rho_w) * r_e — the reader component of the
        aggregate customer."""
        return self.rho_w * self.r_u + (1.0 - self.rho_w) * self.r_e


def _reader_drains(rho: float, q: RWQueueInput) -> tuple:
    """(r_u, r_e) at writer presence ``rho``."""
    if q.lambda_r == 0.0:
        return 0.0, 0.0
    if q.lambda_w == 0.0:
        # No writers: the drains are irrelevant; define the limiting r_e.
        r_e = math.log1p((1.0 + rho) * q.lambda_r / (q.mu_r + q.lambda_w)) / q.mu_r
        return 0.0, r_e
    r_u = math.log1p(rho * q.lambda_r / q.lambda_w) / q.mu_r
    r_e = math.log1p((1.0 + rho) * q.lambda_r / (q.mu_r + q.lambda_w)) / q.mu_r
    return r_u, r_e


def _fixed_point_rhs(rho: float, q: RWQueueInput) -> float:
    r_u, r_e = _reader_drains(rho, q)
    return q.lambda_w * (1.0 / q.mu_w + rho * r_u + (1.0 - rho) * r_e)


def solve_rw_queue(q: RWQueueInput, tol: float = 1e-12,
                   level: int | None = None) -> RWQueueSolution:
    """Solve the Theorem 6 fixed point for ``q``.

    Raises :class:`~repro.errors.UnstableQueueError` when no root exists
    in [0, 1) — i.e. the writer load saturates the queue.  ``level`` is
    attached to the exception for diagnostics.
    """
    if q.lambda_w == 0.0:
        r_u, r_e = _reader_drains(0.0, q)
        return RWQueueSolution(rho_w=0.0, r_u=r_u, r_e=r_e,
                               aggregate_service_time=0.0)

    def g(rho: float) -> float:
        return rho - _fixed_point_rhs(rho, q)

    # g(0) < 0 always (writers arrive, so f(0) > 0).  The queue is stable
    # iff g crosses zero before rho = 1.
    upper = 1.0 - 1e-12
    if g(upper) <= 0.0:
        raise UnstableQueueError(
            f"no stable writer utilization: offered load rho_w >= 1 "
            f"(lambda_w={q.lambda_w:.6g}, mu_w={q.mu_w:.6g})",
            level=level,
        )
    rho = float(brentq(g, 0.0, upper, xtol=tol))
    r_u, r_e = _reader_drains(rho, q)
    t_a = 1.0 / q.mu_w + rho * r_u + (1.0 - rho) * r_e
    return RWQueueSolution(rho_w=rho, r_u=r_u, r_e=r_e,
                           aggregate_service_time=t_a)


def writer_utilization(q: RWQueueInput) -> float:
    """rho_w, or +inf when the queue is saturated (convenience for
    throughput searches that probe past the stability boundary)."""
    try:
        return solve_rw_queue(q).rho_w
    except UnstableQueueError:
        return math.inf
