"""Analysis of Two-Phase Locking on the B-tree.

The paper's conclusions promise an analysis of Two-Phase locking for the
full version; this module supplies it within the same framework.  Under
strict two-phase locking an operation never releases a lock before it
has acquired all of them, so *every* lock on the access path is held
until the operation completes:

* a search holds the level-i R lock for the node search plus the entire
  remaining descent (``T(S,i) = Se(i) + R(i-1) + T(S,i-1)``);
* an update holds the level-i W lock for the remaining descent plus the
  leaf modify and any restructuring
  (``T(U,i) = Se(i) + W(i-1) + T(U,i-1)``).

Compared with Naive Lock-coupling the only change is that safe children
no longer let ancestors go — which is exactly the "restrictive
serialization technique" the paper's introduction warns becomes a
bottleneck: the root lock is held for whole operations, so the maximum
throughput collapses to roughly one over the mean operation length.

Waiting times use the exponential-aggregate form (Theorem 4 at every
level): a 2PL hold is a long *sum* of stages, so its coefficient of
variation is below 1 and the hyperexponential branch model of Theorem 3
does not apply.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algorithms import names
from repro.errors import ConfigurationError, UnstableQueueError
from repro.model.occupancy import OccupancyModel
from repro.model.params import ModelConfig
from repro.model.results import (
    DELETE,
    INSERT,
    SEARCH,
    AlgorithmPrediction,
    LevelSolution,
    unstable_prediction,
)
from repro.model.rwqueue import RWQueueInput, solve_rw_queue

ALGORITHM = names.TWO_PHASE_LOCKING


def analyze_two_phase(config: ModelConfig, arrival_rate: float,
                      occupancy: Optional[OccupancyModel] = None,
                      ) -> AlgorithmPrediction:
    """Predict Two-Phase Locking performance at ``arrival_rate``."""
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {arrival_rate}")

    mix, costs, shape = config.mix, config.costs, config.shape
    h = shape.height
    occ = occupancy if occupancy is not None \
        else OccupancyModel.corollary1(mix, config.order, h)

    se = [costs.se(level, h) for level in range(1, h + 1)]
    sp = [costs.sp(level, h) for level in range(1, h + 1)]
    modify = costs.modify(h)
    # All restructuring work, charged while the whole path is locked.
    split_work = sum(occ.split_propagation(j) * sp[j - 1]
                     for j in range(1, h))

    lam = [arrival_rate * shape.arrival_share(level)
           for level in range(1, h + 1)]

    t_search: List[float] = []
    t_update: List[float] = []
    levels: List[LevelSolution] = []

    for level in range(1, h + 1):
        i = level - 1
        if level == 1:
            t_s = se[0]
            t_u = modify + split_work
        else:
            below = levels[i - 1]
            t_s = se[i] + below.R + t_search[i - 1]
            t_u = se[i] + below.W + t_update[i - 1]
        t_search.append(t_s)
        t_update.append(t_u)

        mu_r = 1.0 / t_s
        mu_w = 1.0 / t_u
        lam_r = mix.q_search * lam[i]
        lam_w = mix.q_update * lam[i]
        try:
            queue = solve_rw_queue(
                RWQueueInput(lambda_r=lam_r, lambda_w=lam_w,
                             mu_r=mu_r, mu_w=mu_w),
                level=level,
            )
        except UnstableQueueError:
            return unstable_prediction(ALGORITHM, arrival_rate, level)

        drain = queue.mean_reader_drain
        wait_r = (queue.rho_w / (1.0 - queue.rho_w)
                  * (1.0 / mu_w + drain)) if lam_w > 0 else 0.0
        wait_w = wait_r + drain
        levels.append(LevelSolution(
            level=level, lambda_r=lam_r, lambda_w=lam_w,
            mu_r=mu_r, mu_w=mu_w, rho_w=queue.rho_w,
            r_u=queue.r_u, r_e=queue.r_e, R=wait_r, W=wait_w,
        ))

    per_search = sum(se[i] + levels[i].R for i in range(h))
    per_update_base = (modify
                       + sum(se[i] for i in range(1, h))
                       + sum(level.W for level in levels))
    responses = {
        SEARCH: per_search,
        INSERT: per_update_base + split_work,
        DELETE: per_update_base,
    }
    return AlgorithmPrediction(
        algorithm=ALGORITHM, arrival_rate=arrival_rate, stable=True,
        levels=levels, response_times=responses,
    )
