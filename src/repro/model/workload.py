"""Effective-load approximation for non-stationary workloads.

The paper's framework (Theorems 1-6) assumes a *stationary* Poisson
arrival stream.  The workload subsystem (:mod:`repro.workload`) adds
bursty and scheduled processes; this module extends the analytical
side with the standard **piecewise-stationary (quasi-static)
composition**: describe the process as a mixture of stationary
segments (``ArrivalSpec.factor_segments``), solve the paper's model at
each segment's rate, and time-average the per-segment responses.

The composition is exact for a schedule whose segments are long
relative to the lock queues' relaxation time, and it is an
*approximation* — usually an optimistic one — for fast-switching MMPP
bursts and transient flash crowds, where queue backlogs carry over
between regimes.  :class:`EffectiveLoad` therefore carries an honest
``divergence`` message whenever the quasi-static assumption is shaky;
callers (and the docs) surface it rather than presenting the composed
number as exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.workload.spec import (
    ArrivalSpec,
    MMPPArrivals,
    ScheduleArrivals,
    SpikeArrivals,
)

__all__ = ["EffectiveLoad", "effective_load", "piecewise_response"]


@dataclass(frozen=True)
class EffectiveLoad:
    """A non-stationary arrival process summarized for the model layer.

    ``segments`` are ``(weight, factor)`` pairs (weights sum to 1);
    ``burstiness`` is the squared coefficient of variation of the rate
    factor across segments (0 for a stationary stream); ``divergence``
    is ``None`` when the piecewise-stationary composition is trusted,
    else a message explaining where it bends the truth.
    """

    segments: Tuple[Tuple[float, float], ...]
    mean_factor: float
    peak_factor: float
    burstiness: float
    stationary: bool
    divergence: Optional[str] = None


def effective_load(arrival: ArrivalSpec) -> EffectiveLoad:
    """Summarize ``arrival`` as a piecewise-stationary mixture, with an
    honest flag when that summary is an approximation."""
    segments = arrival.factor_segments()
    mean = sum(w * f for w, f in segments)
    peak = max(f for _, f in segments)
    second = sum(w * f * f for w, f in segments)
    burstiness = second / (mean * mean) - 1.0 if mean > 0 else 0.0

    divergence: Optional[str] = None
    if isinstance(arrival, MMPPArrivals):
        divergence = (
            "quasi-static composition assumes ON/OFF sojourns (mean "
            f"{arrival.mean_on:g}/{arrival.mean_off:g}) are long "
            "relative to the lock queues' relaxation time; fast "
            "switching carries backlog across states and the true "
            "response lies between the composed and mean-rate "
            "predictions")
    elif isinstance(arrival, SpikeArrivals):
        divergence = (
            "the flash crowd is a transient, not a stationary regime: "
            "composing it as a fixed fraction of time ignores the "
            "post-spike backlog drain, so the composed response "
            "underestimates the incident's tail")
    elif not isinstance(arrival, (ScheduleArrivals,)) \
            and len(segments) > 1:
        divergence = ("piecewise-stationary composition of a process "
                      "without long stationary segments is approximate")
    return EffectiveLoad(segments=segments, mean_factor=mean,
                         peak_factor=peak, burstiness=burstiness,
                         stationary=arrival.stationary(),
                         divergence=divergence)


def piecewise_response(analyze: Callable, config, arrival_rate: float,
                       arrival: ArrivalSpec, operation: str,
                       **analyze_kwargs) -> float:
    """Time-averaged response of ``operation`` under ``arrival``.

    ``analyze`` is one of the paper's per-algorithm analyses
    (``analyze(config, rate, **kwargs) ->``
    :class:`~repro.model.results.AlgorithmPrediction`); each stationary
    segment is solved at ``arrival_rate * factor`` and the responses
    are weighted by segment time share.  Any saturated segment with
    positive weight makes the whole composition ``+inf`` — a regime
    the system cannot drain during does not average away.
    """
    total = 0.0
    for weight, factor in arrival.factor_segments():
        if weight <= 0.0:
            continue
        if factor <= 0.0:
            continue  # an idle segment contributes no operations
        prediction = analyze(config, arrival_rate * factor,
                             **analyze_kwargs)
        response = prediction.response(operation)
        if math.isinf(response):
            return math.inf
        total += weight * response
    return total
