"""Router-side robustness policies and the named policy catalog.

Three orthogonal policies, each independently switchable so experiments
can attribute degradation to (the absence of) a specific defense:

* :class:`RouterRetryPolicy` — connection timeout + bounded retries
  with exponential backoff and *deterministic* jitter, delegating the
  schedule to :class:`repro.resilience.RetryPolicy` (the jitter hashes
  the operation identity, never wall-clock randomness, so a rerun
  retries at identical simulated times).
* :class:`HedgePolicy` — a read not finished ``delay`` after dispatch
  is duplicated on another replica; the first completion wins and the
  loser's work still occupies its server (hedging's honest cost).
* :class:`BreakerPolicy` — a backlog circuit breaker that sheds writes
  while a shard's primary holds far more queued work than the paper's
  rho = 0.5 rule of thumb predicts at steady state (Section 6's
  "effective maximum arrival rate", applied as runtime load control).

All times are in the paper's simulated time unit (one root search).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.resilience.policy import RetryPolicy


@dataclass(frozen=True)
class RouterRetryPolicy:
    """Timeout + bounded backoff retries for operations hitting a down
    shard.  ``timeout`` is the connection timeout burned per failed
    attempt; the inter-attempt delays come from ``backoff``."""

    enabled: bool = True
    timeout: float = 25.0
    backoff: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_retries=3, backoff_base=10.0, backoff_factor=2.0,
        backoff_cap=80.0, jitter=0.25))

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError(
                f"retry timeout must be positive, got {self.timeout}")


@dataclass(frozen=True)
class HedgePolicy:
    """Duplicate a read on a second replica after ``delay`` sim units."""

    enabled: bool = True
    delay: float = 12.0

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ConfigurationError(
                f"hedge delay must be positive, got {self.delay}")


@dataclass(frozen=True)
class BreakerPolicy:
    """Shed writes while a shard's primary is drowning in backlog.

    The trigger is the paper's rho = 0.5 rule of thumb read through
    queued *work*: the expected M/M/1 workload at utilization rho is
    ``m rho / (1 - rho)`` (one mean service time ``m`` at rho = 0.5),
    so the breaker opens when the primary's backlog exceeds ``margin``
    times that — the margin absorbs stochastic fluctuation at the
    cluster tier's low per-shard arrival rates, where instantaneous
    utilization estimates are meaninglessly noisy.  It half-closes when
    the backlog drains below ``hysteresis`` of the opening level, so a
    still-browned-out shard re-opens instead of flapping per
    operation.
    """

    enabled: bool = True
    rho_threshold: float = 0.5
    #: Open at ``margin`` x the rho_threshold steady-state workload.
    #: Calibrated so sustained brownouts trip the breaker but a crash
    #: replay's transient spike mostly drains before shedding rescued
    #: writes.
    margin: float = 12.0
    #: Close when the backlog drains below this fraction of the
    #: opening level.
    hysteresis: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.rho_threshold < 1.0:
            raise ConfigurationError(
                f"breaker threshold must be in (0, 1), got "
                f"{self.rho_threshold}")
        if self.margin <= 0:
            raise ConfigurationError(
                f"breaker margin must be positive, got {self.margin}")
        if not 0.0 < self.hysteresis < 1.0:
            raise ConfigurationError(
                f"breaker hysteresis must be in (0, 1), got "
                f"{self.hysteresis}")

    def open_backlog(self, mean_service: float) -> float:
        """Backlog (sim units of queued work) that opens the breaker."""
        rho = self.rho_threshold
        return self.margin * mean_service * rho / (1.0 - rho)


@dataclass(frozen=True)
class ClusterPolicies:
    """One named bundle of the three router-side defenses."""

    name: str
    retry: RouterRetryPolicy = field(default_factory=RouterRetryPolicy)
    hedge: HedgePolicy = field(default_factory=HedgePolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)

    def describe(self) -> str:
        """One-line summary for CLI listings."""
        parts = []
        if self.retry.enabled:
            b = self.retry.backoff
            parts.append(
                f"retry(timeout={self.retry.timeout:g}, "
                f"max_retries={b.max_retries}, base={b.backoff_base:g}, "
                f"cap={b.backoff_cap:g}, jitter={b.jitter:g})")
        if self.hedge.enabled:
            parts.append(f"hedge(delay={self.hedge.delay:g})")
        if self.breaker.enabled:
            parts.append(
                f"breaker(rho>{self.breaker.rho_threshold:g}, "
                f"margin={self.breaker.margin:g}, "
                f"hysteresis={self.breaker.hysteresis:g})")
        return " + ".join(parts) if parts else "no defenses"


def _disabled_retry() -> RouterRetryPolicy:
    return RouterRetryPolicy(enabled=False)


def _disabled_hedge() -> HedgePolicy:
    return HedgePolicy(enabled=False)


def _disabled_breaker() -> BreakerPolicy:
    return BreakerPolicy(enabled=False)


#: The named presets ``btree-perf list-cluster-policies`` enumerates.
#: ``fragile`` is the no-defense baseline every resilient variant is
#: judged against in ext08; the single-defense presets attribute the
#: gain to one mechanism.
POLICY_PRESETS: Dict[str, ClusterPolicies] = {
    preset.name: preset for preset in (
        ClusterPolicies("fragile", retry=_disabled_retry(),
                        hedge=_disabled_hedge(),
                        breaker=_disabled_breaker()),
        ClusterPolicies("resilient"),
        ClusterPolicies("retry-only", hedge=_disabled_hedge(),
                        breaker=_disabled_breaker()),
        ClusterPolicies("hedge-only", retry=_disabled_retry(),
                        breaker=_disabled_breaker()),
        ClusterPolicies("breaker-only", retry=_disabled_retry(),
                        hedge=_disabled_hedge()),
    )
}


def get_policies(name: str) -> ClusterPolicies:
    """Look up a policy preset; the error names the known presets."""
    try:
        return POLICY_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown cluster policy preset {name!r}; expected one of "
            f"{', '.join(POLICY_PRESETS)}") from None


def policy_names() -> Tuple[str, ...]:
    """Preset names in catalog order."""
    return tuple(POLICY_PRESETS)
