"""Analytical cluster composition: router M/G/1 + per-shard queues.

The composition layers three results:

1. **Per-shard service demands** come from the single-tree framework:
   :func:`shard_service_demands` evaluates an algorithm's per-level
   queue-network analysis at vanishing load, where the response time
   *is* the total service demand of one operation (no queueing) — so
   every Section 5 cost parameter (disk dilation, split costs, fanouts)
   flows into the cluster model unchanged.
2. **Each shard server is a multi-class M/G/1** (Pollaczek-Khinchine,
   :mod:`repro.model.mg1`): the primary serves writes plus 1/R of the
   reads, each class exponential around its demand; replicas serve
   reads only.  This serializes a shard into one queue per server — a
   deliberate approximation the cluster *simulator* is built to match
   exactly, so the model-vs-simulation comparison in ext08 validates
   the composition itself, not a coincidence of constants.
3. **The router is an M/G/1 stage with deterministic service** in front
   of the shard fan-out (``E[X^2] = t^2``).

On top sits a closed-form availability model
(:func:`predict_availability`) for ``shard-crash`` fault plans: without
retries every operation arriving inside a crash window fails; with a
:class:`~repro.cluster.policies.RouterRetryPolicy` an operation whose
remaining outage is shorter than the retry schedule's total span
(:func:`rescue_horizon`) is rescued.  The paper's rho_w = 0.5 rule of
thumb enters through :func:`breaker_arrival_rate` — the per-shard
arrival rate at which the single-tree root writer utilization crosses
0.5, i.e. where the circuit breaker's regime begins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.cluster.policies import ClusterPolicies, RouterRetryPolicy
from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigurationError, ConvergenceError
from repro.model.params import ModelConfig
from repro.model.results import DELETE, INSERT, SEARCH
from repro.model.throughput import arrival_rate_for_root_utilization
from repro.resilience.faults import SHARD_CRASH, FaultPlan

#: Arrival rate standing in for "zero load" when extracting demands.
ZERO_LOAD_RATE = 1e-9

_OPS = (SEARCH, INSERT, DELETE)


def shard_service_demands(analyze: Callable, config: ModelConfig,
                          **analyzer_kwargs) -> Dict[str, float]:
    """Zero-load per-operation service demands of one shard.

    At ``ZERO_LOAD_RATE`` the queue network has no waiting, so the
    predicted response times are the pure service demands the cluster
    tier should charge per operation.
    """
    prediction = analyze(config, ZERO_LOAD_RATE, **analyzer_kwargs)
    return {op: prediction.response(op) for op in _OPS}


def breaker_arrival_rate(analyze: Callable, config: ModelConfig,
                         target: float = 0.5,
                         **analyzer_kwargs) -> float:
    """Per-shard arrival rate where root writer utilization hits
    ``target`` (the paper's 0.5 rule of thumb); +inf when the
    configuration never reaches it (the Link-type regime)."""
    try:
        return arrival_rate_for_root_utilization(
            analyze, config, target=target, **analyzer_kwargs)
    except ConvergenceError:
        return math.inf


def rescue_horizon(retry: RouterRetryPolicy) -> float:
    """Expected total span of the retry schedule: the longest remaining
    outage a retried operation survives.

    Each of the ``max_retries`` attempts burns the connection timeout
    plus an expected backoff delay of ``min(base * factor^(k-1), cap) *
    (1 + jitter/2)`` (the jitter ``u`` is uniform on [0, 1))."""
    if not retry.enabled:
        return 0.0
    backoff = retry.backoff
    span = 0.0
    for attempt in range(1, backoff.max_retries + 1):
        base = min(backoff.backoff_base
                   * backoff.backoff_factor ** (attempt - 1),
                   backoff.backoff_cap)
        span += retry.timeout + base * (1.0 + 0.5 * backoff.jitter)
    return span


@dataclass(frozen=True)
class ClusterPrediction:
    """Analytical steady-state prediction for one cluster operating
    point (the *hottest* shard bounds every utilization)."""

    spec: ClusterSpec
    offered_rate: float
    stable: bool
    router_utilization: float
    router_wait: float
    primary_utilization: float
    replica_utilization: float
    primary_wait: float
    replica_wait: float
    #: End-to-end expected response per operation type; +inf when any
    #: stage is saturated.
    response_times: Dict[str, float]

    @property
    def mean_response(self) -> float:
        """Plain mean over the operation types (mix-weighted response
        is exposed by :func:`analyze_cluster` callers that know the
        mix; the simulator's mean is compared against
        ``response_times`` weighted by the same mix)."""
        if not self.stable:
            return math.inf
        return sum(self.response_times.values()) / len(self.response_times)

    def mixed_response(self, mix: Dict[str, float]) -> float:
        """Mix-weighted expected response (matches the simulator's
        completed-operation mean in expectation)."""
        if not self.stable:
            return math.inf
        return math.fsum(mix[op] * self.response_times[op] for op in _OPS)


def _saturated(spec: ClusterSpec, offered_rate: float, rho_router: float,
               rho_primary: float, rho_replica: float) -> ClusterPrediction:
    return ClusterPrediction(
        spec=spec, offered_rate=offered_rate, stable=False,
        router_utilization=rho_router, router_wait=math.inf,
        primary_utilization=rho_primary,
        replica_utilization=rho_replica,
        primary_wait=math.inf, replica_wait=math.inf,
        response_times={op: math.inf for op in _OPS})


def analyze_cluster(spec: ClusterSpec, offered_rate: float,
                    service_means: Dict[str, float],
                    mix: Dict[str, float],
                    router_service: float = 0.01) -> ClusterPrediction:
    """Steady-state response composition at total arrival ``offered_rate``.

    ``service_means`` / ``mix`` use the same shape as
    :class:`~repro.cluster.sim.ClusterSimConfig`, so one demand dict
    (usually from :func:`shard_service_demands`) feeds both sides of
    the model-vs-simulation comparison.
    """
    if offered_rate <= 0:
        raise ConfigurationError(
            f"offered rate must be positive, got {offered_rate}")
    for op in _OPS:
        if service_means.get(op, 0.0) <= 0:
            raise ConfigurationError(
                f"service mean for {op!r} must be positive")
    replicas = spec.replicas
    weight = spec.hottest_weight
    shard_rate = offered_rate * weight
    rates = {op: shard_rate * mix[op] for op in _OPS}
    read_rate = rates[SEARCH] / replicas

    # Primary: every write class plus its 1/R read share; replicas:
    # reads only.  Multi-class M/G/1 with exponential per-class service.
    rho_primary = (rates[INSERT] * service_means[INSERT]
                   + rates[DELETE] * service_means[DELETE]
                   + read_rate * service_means[SEARCH])
    rho_replica = read_rate * service_means[SEARCH]
    rho_router = offered_rate * router_service
    if rho_primary >= 1.0 or rho_replica >= 1.0 or rho_router >= 1.0:
        return _saturated(spec, offered_rate, rho_router, rho_primary,
                          rho_replica)

    # Pollaczek-Khinchine with the class-mixture second moment:
    # W = sum_c lambda_c E[X_c^2] / (2 (1 - rho)), E[X^2] = 2 m^2 for
    # the exponential classes, t^2 exactly for the constant router.
    primary_num = (rates[INSERT] * 2.0 * service_means[INSERT] ** 2
                   + rates[DELETE] * 2.0 * service_means[DELETE] ** 2
                   + read_rate * 2.0 * service_means[SEARCH] ** 2)
    primary_wait = primary_num / (2.0 * (1.0 - rho_primary))
    replica_wait = (read_rate * 2.0 * service_means[SEARCH] ** 2
                    / (2.0 * (1.0 - rho_replica)))
    router_wait = (offered_rate * router_service ** 2
                   / (2.0 * (1.0 - rho_router)))

    front = router_service + router_wait
    read_wait = (primary_wait
                 + (replicas - 1) * replica_wait) / replicas
    response_times = {
        SEARCH: front + read_wait + service_means[SEARCH],
        INSERT: front + primary_wait + service_means[INSERT],
        DELETE: front + primary_wait + service_means[DELETE],
    }
    return ClusterPrediction(
        spec=spec, offered_rate=offered_rate, stable=True,
        router_utilization=rho_router, router_wait=router_wait,
        primary_utilization=rho_primary,
        replica_utilization=rho_replica,
        primary_wait=primary_wait, replica_wait=replica_wait,
        response_times=response_times)


def predict_availability(spec: ClusterSpec, faults: FaultPlan,
                         policies: Optional[ClusterPolicies],
                         horizon: float) -> float:
    """Closed-form availability under a ``shard-crash`` fault plan.

    For each crash window on shard s (weight w_s), operations arriving
    at time t inside the window fail unless the remaining outage
    ``end - t`` fits inside the retry schedule's span
    (:func:`rescue_horizon`); Poisson arrivals make the lost fraction
    the lost *time* fraction.  ``slow-shard`` / ``replica-lag`` windows
    degrade latency, not availability, and do not appear here.  Crash
    windows on one shard are assumed non-overlapping (as
    :func:`repro.cluster.chaos.chaos_plan` guarantees).
    """
    if horizon <= 0:
        raise ConfigurationError(
            f"horizon must be positive, got {horizon}")
    span = rescue_horizon(policies.retry) if policies is not None else 0.0
    lost = 0.0
    for fault in faults.simulation_faults(kind=SHARD_CRASH):
        start = fault.at
        if start >= horizon:
            continue
        # Arrivals stop at the horizon; retries drain past it, so the
        # rescue cutoff is the true window end, not the horizon.
        failed_until = min(fault.window_end - span, horizon)
        lost += spec.weight(fault.shard) \
            * max(0.0, failed_until - start) / horizon
    return max(0.0, 1.0 - lost)
