"""Fault-tolerant sharded B-tree cluster tier (``repro.cluster``).

The paper analyses one B-tree whose capacity is capped by the root
writer utilization rho_w = 0.5 (Section 6).  The ROADMAP's "millions of
users" scenario range-partitions the keyspace across S such trees
behind a router — and a production cluster is defined as much by how it
*degrades* as by how it scales.  This package models that deployment on
both sides of the framework:

* **Topology** — :class:`ClusterSpec`: S range-partitioned shards, R
  read-serving replicas per shard, an optional non-uniform arrival
  weighting (:mod:`repro.cluster.spec`).
* **Robustness policies** — router timeout + retry with exponential
  backoff and deterministic jitter (reusing
  :class:`repro.resilience.RetryPolicy`), hedged reads against
  replicas, and a rho-triggered circuit breaker shedding writes when a
  shard's measured utilization crosses the paper's 0.5 rule of thumb
  (:mod:`repro.cluster.policies`).
* **Simulator** — an event-driven cluster simulator
  (:func:`run_cluster_simulation`) whose per-shard service demands come
  from the single-tree analytical model's zero-load response times, and
  which consumes simulation-time chaos (``shard-crash`` /
  ``slow-shard`` / ``replica-lag``) from the deterministic fault
  harness (:mod:`repro.resilience.faults`).
* **Analytical composition** — the router is an M/G/1 stage from
  :mod:`repro.model.mg1` composed with a multi-class M/G/1 serialization
  of each shard, the shard demands again supplied by the per-level
  queue network; plus a closed-form availability model under a fault
  plan (:mod:`repro.cluster.model`).

The ``ext08`` experiment sweeps shard count x fault rate at 100–1000x
the paper's arrival rates and validates the composition against the
simulator; ``btree-perf cluster`` / ``btree-perf list-cluster-policies``
expose the tier on the command line.  See ``docs/robustness.md`` for
the cluster fault model and determinism guarantees.
"""

from repro.cluster.chaos import chaos_plan
from repro.cluster.metrics import ClusterResult, ShardStats
from repro.cluster.model import (
    ClusterPrediction,
    analyze_cluster,
    breaker_arrival_rate,
    predict_availability,
    rescue_horizon,
    shard_service_demands,
)
from repro.cluster.policies import (
    POLICY_PRESETS,
    BreakerPolicy,
    ClusterPolicies,
    HedgePolicy,
    RouterRetryPolicy,
    get_policies,
    policy_names,
)
from repro.cluster.sim import ClusterSimConfig, run_cluster_simulation
from repro.cluster.spec import ClusterSpec

__all__ = [
    "BreakerPolicy",
    "ClusterPolicies",
    "ClusterPrediction",
    "ClusterResult",
    "ClusterSimConfig",
    "ClusterSpec",
    "HedgePolicy",
    "POLICY_PRESETS",
    "RouterRetryPolicy",
    "ShardStats",
    "analyze_cluster",
    "breaker_arrival_rate",
    "chaos_plan",
    "get_policies",
    "policy_names",
    "predict_availability",
    "rescue_horizon",
    "run_cluster_simulation",
    "shard_service_demands",
]
