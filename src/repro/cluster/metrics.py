"""Degradation metrics of one cluster run.

Definitions (kept deliberately strict — deliberate load-shedding still
counts against availability, because a shed client saw an error):

* ``availability`` — completed / attempted operations.
* ``goodput`` — completed operations per simulated time unit.
* ``mean_response`` — mean response of *completed* operations only
  (failed operations have no response to average).

:meth:`ClusterResult.publish` exports the counters through
:class:`repro.obs.instruments.Instrumentation` under the ``cluster.*``
namespace so cluster runs merge into the standard telemetry stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instruments import Instrumentation


@dataclass
class ShardStats:
    """Mutable per-shard tallies accumulated by the simulator."""

    shard: int
    completed: int = 0
    failed: int = 0
    shed_writes: int = 0
    retries: int = 0
    hedges: int = 0
    hedged_wins: int = 0
    #: Total service demand dispatched to the shard's servers.
    busy_time: float = 0.0

    @property
    def attempted(self) -> int:
        return self.completed + self.failed + self.shed_writes

    @property
    def availability(self) -> float:
        attempted = self.attempted
        if attempted == 0:
            return 1.0
        return self.completed / attempted


@dataclass(frozen=True)
class ClusterResult:
    """Everything one :func:`~repro.cluster.sim.run_cluster_simulation`
    run produced."""

    policy_name: str
    offered_rate: float
    horizon: float
    seed: int
    attempted: int
    completed: int
    failed: int
    shed_writes: int
    retries: int
    hedges: int
    hedged_wins: int
    #: Sum of completed-operation response times (mean = sum/completed).
    response_sum: float
    per_shard: Tuple[ShardStats, ...] = field(default_factory=tuple)

    @property
    def availability(self) -> float:
        if self.attempted == 0:
            return 1.0
        return self.completed / self.attempted

    @property
    def goodput(self) -> float:
        if self.horizon <= 0:
            return 0.0
        return self.completed / self.horizon

    @property
    def mean_response(self) -> float:
        if self.completed == 0:
            return math.inf
        return self.response_sum / self.completed

    def counters(self) -> Dict[str, int]:
        """The ``cluster.*`` counter snapshot of this run."""
        return {
            "cluster.attempted": self.attempted,
            "cluster.completed": self.completed,
            "cluster.failed": self.failed,
            "cluster.shed_writes": self.shed_writes,
            "cluster.retries": self.retries,
            "cluster.hedges": self.hedges,
            "cluster.hedged_wins": self.hedged_wins,
        }

    def publish(self, instruments: "Instrumentation") -> None:
        """Add this run's tallies to ``instruments`` (``cluster.*``)."""
        for name, value in self.counters().items():
            instruments.counter(name).inc(value)
