"""Cluster topology: shard count, partition map, read replicas.

A :class:`ClusterSpec` is pure topology — policies live in
:mod:`repro.cluster.policies`, dynamics in :mod:`repro.cluster.sim` and
:mod:`repro.cluster.model` — so the same spec drives the simulator and
the analytical composition.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClusterSpec:
    """S range-partitioned B-tree shards behind a router.

    ``replicas`` counts the read-serving servers per shard *including*
    the primary: server 0 is the primary (all writes plus its share of
    reads), servers 1..R-1 are read replicas.  ``weights`` skews the
    keyspace partition — shard s owns a key range holding ``weights[s]``
    of the traffic; ``None`` is the uniform partition.
    """

    shards: int
    replicas: int = 1
    weights: Optional[Tuple[float, ...]] = None
    #: Size of the routed key universe (range partition granularity).
    key_space: int = 1 << 20

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"cluster needs >= 1 shard, got {self.shards}")
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas counts servers per shard (primary included), "
                f"must be >= 1, got {self.replicas}")
        if self.key_space < self.shards:
            raise ConfigurationError(
                f"key_space {self.key_space} smaller than shard count "
                f"{self.shards}")
        if self.weights is not None:
            if len(self.weights) != self.shards:
                raise ConfigurationError(
                    f"{len(self.weights)} weights for {self.shards} shards")
            if any(w <= 0 for w in self.weights):
                raise ConfigurationError("shard weights must be positive")

    @property
    def shard_weights(self) -> Tuple[float, ...]:
        """Normalized per-shard arrival shares (sum to 1)."""
        if self.weights is None:
            return (1.0 / self.shards,) * self.shards
        total = math.fsum(self.weights)
        return tuple(w / total for w in self.weights)

    def _boundaries(self) -> Tuple[int, ...]:
        cached = self.__dict__.get("_bounds")
        if cached is None:
            cumulative = 0.0
            bounds = []
            for weight in self.shard_weights[:-1]:
                cumulative += weight
                bounds.append(int(round(cumulative * self.key_space)))
            cached = tuple(bounds)
            object.__setattr__(self, "_bounds", cached)
        return cached

    def shard_for(self, key: int) -> int:
        """Owning shard of ``key`` under the range partition."""
        if not 0 <= key < self.key_space:
            raise ConfigurationError(
                f"key {key} outside the routed universe "
                f"[0, {self.key_space})")
        return bisect_right(self._boundaries(), key)

    def weight(self, shard: int) -> float:
        """Arrival share of ``shard``."""
        if not 0 <= shard < self.shards:
            raise ConfigurationError(
                f"no shard {shard} in a {self.shards}-shard cluster")
        return self.shard_weights[shard]

    @property
    def hottest_weight(self) -> float:
        """Largest per-shard arrival share (the scaling bottleneck)."""
        return max(self.shard_weights)
