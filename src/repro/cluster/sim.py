"""Event-driven cluster simulator: router, shards, replicas, chaos.

The simulator advances one event heap over the whole cluster.  Each
shard is a set of FIFO servers (server 0 = primary taking every write
plus its share of reads; servers 1..R-1 = read replicas) whose service
times are exponential around the *zero-load demands of the single-tree
analytical model* (:func:`repro.cluster.model.shard_service_demands`) —
the per-level queue network supplies what a shard costs, the cluster
tier supplies how shards queue, fail and recover.  The router is a
FIFO stage with constant service time in front of everything.

Chaos arrives as simulation-time faults from the deterministic fault
harness (:meth:`repro.resilience.faults.FaultPlan.simulation_faults`):

* ``shard-crash`` — the whole shard is down during the window;
  operations reaching it fail, or retry under a
  :class:`~repro.cluster.policies.RouterRetryPolicy`; after recovery
  the shard replays its backlog at ``factor``-inflated service for a
  catch-up window of the same length.
* ``slow-shard`` — the primary's service dilates by ``factor`` (the
  brownout hedged reads are designed to survive).
* ``replica-lag`` — replica service dilates by ``factor``.

Everything is deterministic given the seed: one ``random.Random``
drives arrivals, op types, keys and service draws in event order; retry
jitter hashes the operation id (via
:meth:`repro.resilience.RetryPolicy.delay_for`); heap ties break on a
monotone sequence number.  Two runs with the same config are
byte-identical, which the chaos-smoke CI job asserts end to end.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Tuple

from repro.cluster.metrics import ClusterResult, ShardStats
from repro.cluster.policies import ClusterPolicies, get_policies
from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigurationError
from repro.model.results import DELETE, INSERT, SEARCH
from repro.resilience.faults import (
    REPLICA_LAG,
    SHARD_CRASH,
    SLOW_SHARD,
    FaultPlan,
)

#: Event kinds, in dispatch order for equal timestamps.
_ARRIVAL = 0
_DISPATCH = 1
_HEDGE = 2

#: Default router service time (sim units): a hash-and-forward stage,
#: far cheaper than a tree operation (one root search = 1 unit).
ROUTER_SERVICE = 0.01


@dataclass(frozen=True)
class ClusterSimConfig:
    """One cluster run: topology, policies, load, demands, chaos."""

    spec: ClusterSpec
    #: Total (cluster-wide) Poisson arrival rate.
    arrival_rate: float
    #: Mean service demand per operation type (``search`` / ``insert``
    #: / ``delete``), normally the single-tree model's zero-load
    #: response times.
    service_means: Dict[str, float]
    #: Operation-type probabilities (``search``/``insert``/``delete``).
    mix: Dict[str, float]
    policies: ClusterPolicies = field(
        default_factory=lambda: get_policies("resilient"))
    router_service: float = ROUTER_SERVICE
    horizon: float = 2_000.0
    seed: int = 1
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.arrival_rate}")
        if self.horizon <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {self.horizon}")
        if self.router_service < 0:
            raise ConfigurationError(
                f"router service must be >= 0, got {self.router_service}")
        for op in (SEARCH, INSERT, DELETE):
            if op not in self.service_means:
                raise ConfigurationError(
                    f"service_means lacks {op!r}")
            if self.service_means[op] <= 0:
                raise ConfigurationError(
                    f"service mean for {op!r} must be positive")
            if op not in self.mix:
                raise ConfigurationError(f"mix lacks {op!r}")
        total = math.fsum(self.mix[op] for op in (SEARCH, INSERT, DELETE))
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ConfigurationError(
                f"operation mix sums to {total}, not 1")


class _Op:
    """One routed operation."""

    __slots__ = ("op_id", "kind", "shard", "arrival", "attempt")

    def __init__(self, op_id: int, kind: str, shard: int,
                 arrival: float) -> None:
        self.op_id = op_id
        self.kind = kind
        self.shard = shard
        self.arrival = arrival
        self.attempt = 0


def _fault_windows(faults: FaultPlan, shards: int):
    """Per-shard (start, end, factor) windows, split by fault kind."""
    crashes: List[List[Tuple[float, float, float]]] = \
        [[] for _ in range(shards)]
    slows: List[List[Tuple[float, float, float]]] = \
        [[] for _ in range(shards)]
    lags: List[List[Tuple[float, float, float]]] = \
        [[] for _ in range(shards)]
    for spec in faults.simulation_faults():
        if spec.shard >= shards:
            raise ConfigurationError(
                f"fault {spec.encode()!r} targets shard {spec.shard} of a "
                f"{shards}-shard cluster")
        window = (spec.at, spec.window_end, spec.factor)
        if spec.kind == SHARD_CRASH:
            crashes[spec.shard].append(window)
        elif spec.kind == SLOW_SHARD:
            slows[spec.shard].append(window)
        elif spec.kind == REPLICA_LAG:
            lags[spec.shard].append(window)
    return crashes, slows, lags


def run_cluster_simulation(config: ClusterSimConfig) -> ClusterResult:
    """Run one seeded cluster simulation to completion.

    Arrivals stop at ``config.horizon``; in-flight work (including
    armed retries and hedges) drains past it so every attempted
    operation is accounted completed, failed or shed.
    """
    spec = config.spec
    policies = config.policies
    retry, hedge, breaker = policies.retry, policies.hedge, policies.breaker
    n_shards, n_servers = spec.shards, spec.replicas
    rng = random.Random(config.seed)
    crashes, slows, lags = _fault_windows(config.faults, n_shards)

    free = [[0.0] * n_servers for _ in range(n_shards)]
    stats = [ShardStats(shard=s) for s in range(n_shards)]
    breaker_open = [False] * n_shards

    q_search = config.mix[SEARCH]
    q_insert = q_search + config.mix[INSERT]
    means = config.service_means
    max_retries = retry.backoff.max_retries if retry.enabled else 0
    mean_service = math.fsum(
        config.mix[op] * means[op] for op in (SEARCH, INSERT, DELETE))
    open_backlog = breaker.open_backlog(mean_service)
    close_backlog = breaker.hysteresis * open_backlog

    attempted = completed = failed = shed = 0
    retries = hedges = hedged_wins = 0
    response_sum = 0.0
    router_free = 0.0
    heap: list = []
    seq = 0

    def push(time: float, kind: int, payload) -> None:
        nonlocal seq
        heappush(heap, (time, kind, seq, payload))
        seq += 1

    def crashed_at(shard: int, t: float) -> bool:
        return any(at <= t < end for at, end, _ in crashes[shard])

    def dilation(shard: int, server: int, t: float) -> float:
        f = 1.0
        for at, end, factor in crashes[shard]:
            # Catch-up replay: a window of the outage's own length,
            # immediately after recovery, at inflated service.
            if end <= t < end + (end - at):
                f *= factor
        if server == 0:
            for at, end, factor in slows[shard]:
                if at <= t < end:
                    f *= factor
        else:
            for at, end, factor in lags[shard]:
                if at <= t < end:
                    f *= factor
        return f

    def breaker_sheds(shard: int, t: float) -> bool:
        """Update the breaker's hysteresis state from the primary's
        backlog (queued work ahead of a new dispatch) and report
        whether writes are currently shed."""
        backlog = free[shard][0] - t
        if breaker_open[shard]:
            if backlog < close_backlog:
                breaker_open[shard] = False
        elif backlog > open_backlog:
            breaker_open[shard] = True
        return breaker_open[shard]

    def serve(shard: int, server: int, t: float, mean: float) -> float:
        """Enqueue one service demand; returns the completion time."""
        demand = rng.expovariate(1.0 / mean) * dilation(shard, server, t)
        start = free[shard][server] if free[shard][server] > t else t
        completion = start + demand
        free[shard][server] = completion
        stats[shard].busy_time += demand
        return completion

    def complete(op: _Op, completion: float) -> None:
        nonlocal completed, response_sum
        completed += 1
        stats[op.shard].completed += 1
        response_sum += completion - op.arrival

    push(0.0, _ARRIVAL, None)

    while heap:
        t, kind, _, payload = heappop(heap)

        if kind == _ARRIVAL:
            key = rng.randrange(spec.key_space)
            u = rng.random()
            op_kind = SEARCH if u < q_search else (
                INSERT if u < q_insert else DELETE)
            op = _Op(attempted, op_kind, spec.shard_for(key), t)
            attempted += 1
            # FIFO router stage; arrivals are processed in time order so
            # the running free-time is the queue.
            router_free = (router_free if router_free > t else t) \
                + config.router_service
            push(router_free, _DISPATCH, op)
            next_arrival = t + rng.expovariate(config.arrival_rate)
            if next_arrival < config.horizon:
                push(next_arrival, _ARRIVAL, None)
            continue

        if kind == _DISPATCH:
            op = payload
            shard = op.shard
            if crashed_at(shard, t):
                if op.attempt < max_retries:
                    op.attempt += 1
                    retries += 1
                    stats[shard].retries += 1
                    delay = retry.timeout + retry.backoff.delay_for(
                        op.attempt, token=f"op{op.op_id}")
                    push(t + delay, _DISPATCH, op)
                else:
                    failed += 1
                    stats[shard].failed += 1
                continue
            is_write = op.kind != SEARCH
            if is_write and breaker.enabled and breaker_sheds(shard, t):
                shed += 1
                stats[shard].shed_writes += 1
                continue
            server = 0 if is_write or n_servers == 1 \
                else rng.randrange(n_servers)
            completion = serve(shard, server, t, means[op.kind])
            if (not is_write and hedge.enabled and n_servers > 1
                    and completion > t + hedge.delay):
                push(t + hedge.delay, _HEDGE, (op, server, completion))
            else:
                complete(op, completion)
            continue

        # _HEDGE: the original read is still in flight; duplicate it on
        # the least-loaded *other* server and let the first finish win.
        op, first_server, first_completion = payload
        hedges += 1
        stats[op.shard].hedges += 1
        others = [s for s in range(n_servers) if s != first_server]
        server = min(others, key=lambda s: (free[op.shard][s], s))
        second_completion = serve(op.shard, server, t, means[SEARCH])
        if second_completion < first_completion:
            hedged_wins += 1
            stats[op.shard].hedged_wins += 1
            complete(op, second_completion)
        else:
            complete(op, first_completion)

    return ClusterResult(
        policy_name=policies.name,
        offered_rate=config.arrival_rate,
        horizon=config.horizon,
        seed=config.seed,
        attempted=attempted,
        completed=completed,
        failed=failed,
        shed_writes=shed,
        retries=retries,
        hedges=hedges,
        hedged_wins=hedged_wins,
        response_sum=response_sum,
        per_shard=tuple(stats),
    )
