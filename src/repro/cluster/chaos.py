"""Deterministic chaos schedules for cluster experiments.

:func:`chaos_plan` maps (shard count, fault rate, horizon) to a
:class:`~repro.resilience.faults.FaultPlan` of simulation-time faults.
The schedule is a pure function of its arguments — no randomness — so
the same experiment row always injects the same faults, the plan
round-trips through ``REPRO_FAULTS``, and the ext08 sidecars are
byte-identical across reruns (the chaos-smoke CI job asserts this).

Fault windows are placed at fixed fractions of the horizon, on shards
spread by a fixed stride, and sized so the rescue question is
non-trivial: crash windows are longer than a typical retry horizon
(some crash-window operations are rescued, some are not), and brownouts
are long enough to push the primary's backlog past the circuit
breaker's opening level.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.resilience.faults import (
    REPLICA_LAG,
    SHARD_CRASH,
    SLOW_SHARD,
    FaultPlan,
    FaultSpec,
)


def chaos_plan(shards: int, fault_rate: int, horizon: float) -> FaultPlan:
    """The injected fault schedule for one (shards, fault_rate) cell.

    ``fault_rate`` counts chaos "waves": each wave adds one
    ``shard-crash`` and one ``slow-shard`` window (the second wave also
    adds a ``replica-lag`` window), targeting distinct shards where the
    cluster has enough of them.  Rate 0 is the fault-free baseline.
    """
    if shards < 1:
        raise ConfigurationError(f"need >= 1 shard, got {shards}")
    if fault_rate < 0:
        raise ConfigurationError(
            f"fault_rate counts chaos waves, must be >= 0, "
            f"got {fault_rate}")
    if horizon <= 0:
        raise ConfigurationError(
            f"horizon must be positive, got {horizon}")
    specs = []
    for wave in range(fault_rate):
        # Spread waves over both time and the shard ring.
        base = (0.15 + 0.40 * wave) * horizon
        crash_shard = (3 * wave) % shards
        slow_shard = (3 * wave + 1) % shards
        lag_shard = (3 * wave + 2) % shards
        specs.append(FaultSpec(
            kind=SHARD_CRASH, task_index=crash_shard,
            at=round(base, 6), duration=round(0.10 * horizon, 6),
            factor=1.6))
        specs.append(FaultSpec(
            kind=SLOW_SHARD, task_index=slow_shard,
            at=round(base + 0.16 * horizon, 6),
            duration=round(0.15 * horizon, 6), factor=6.0))
        if wave >= 1:
            specs.append(FaultSpec(
                kind=REPLICA_LAG, task_index=lag_shard,
                at=round(base + 0.05 * horizon, 6),
                duration=round(0.10 * horizon, 6), factor=6.0))
    return FaultPlan(specs=tuple(specs))
