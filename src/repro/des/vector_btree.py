"""Vectorized full-B-tree descent kernel (struct-of-arrays).

:mod:`repro.des.vector` vectorizes the *single-lock* contention
workload; this module extends the same struct-of-arrays discipline to
whole B-tree replications: ``n_lanes`` independent trees — per-lane
node occupancy, per-node FCFS lock queues, per-process descent
position/phase vectors — advance together, one interpreted dispatch
serving every lane.  Two descent protocols are vectorized, modelling
the two algorithm families whose lock schedules the scalar simulator
executes (paper Section 4):

* ``"coupling"`` — naive lock-coupling: searches R-couple root→leaf;
  inserts W-couple, releasing each ancestor as soon as the child is
  safe, and keep the parent across an unsafe leaf's modify+split.
* ``"optimistic"`` — optimistic descent: inserts R-couple to the
  leaf's parent, W-lock the leaf, and fall back to a full W-coupled
  redo descent when the leaf turns out to be unsafe.

Every operation draws one uniform key; the node visited at level ``d``
is ``floor(key * n_nodes[d])``, so descent paths are hierarchically
consistent the way a range-partitioned tree's are.  All durations are
continuous per-lane pseudo-random draws seeded per lane (lane-prefix
property: lane ``k``'s schedule is independent of the batch width).

The step loop pops the earliest pending timer of **every** live lane
per iteration, then drains the zero-time cascade it triggers — lock
releases dispatch FCFS grant waves whose woken processes are queued in
a per-lane FIFO and continued in wake order, exactly reproducing the
scalar engine's same-timestamp heap ordering (the event that fired
runs to completion first, resumed waiters follow in grant order).
That makes the kernel *bit-exact* against the scalar oracle:
:func:`run_scalar_btree_reference` replays any lane through the real
:class:`~repro.des.engine.Simulator` + :class:`~repro.des.rwlock.RWLock`
machinery and :func:`assert_btree_equivalent` compares end times,
event counts, per-level grant counts, splits, redos and per-process
queueing-delay totals **exactly** — both kernels perform the same
IEEE-754 additions in the same per-process order.

See ``docs/performance.md`` ("Vectorized B-tree descent kernel") for
measured speedups and :mod:`repro.des.autotune` for the cost model
that picks the batch width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "PROTOCOLS",
    "BTreeDescentSpec",
    "BTreeTables",
    "BTreeLaneStats",
    "VectorBTreeStats",
    "VectorBTreeKernel",
    "run_btree_vectorized",
    "run_scalar_btree_reference",
    "assert_btree_equivalent",
]

PROTOCOLS = ("coupling", "optimistic")

_INF = math.inf

#: Process phases — the continuation its next timer (or grant) runs.
PH_THINK = 0   # timer: think end -> request the root
PH_SVC = 1     # timer: node service end -> request child / finish search
PH_MOD = 2     # timer: leaf modify end -> split, finish, or redo
PH_SPLIT = 3   # timer: split service end -> release parent+leaf, finish
PH_WAIT = 4    # queued on a node; no timer, FCFS key in ``rt``
PH_DONE = 5

#: Operation kinds (``opk``).
OP_SEARCH = 0     # R-coupled descent, all levels
OP_INS_W = 1      # W-coupled insert descent (coupling, or optimistic redo)
OP_INS_OPT = 2    # optimistic first pass: R-couple, W-lock the leaf


@dataclass(frozen=True)
class BTreeDescentSpec:
    """The replicated B-tree descent workload.

    Every lane runs ``n_procs`` processes for ``iterations`` operations
    each against one static tree of ``levels[d]`` nodes per level
    (root→leaf, ``levels[0] == 1``).  Operation ``j`` of process ``p``
    is an insert iff ``(p + j) % insert_every == 0`` (0 = searches
    only); leaves start at ``order // 2`` entries, an insert into a
    leaf at ``order`` entries is unsafe and triggers a split back to
    ``(order + 1) // 2``.  The tree *shape* is static — splits reset
    leaf occupancy rather than growing the node set — which keeps the
    state array-shaped while exercising the safe/unsafe, split and
    redo machinery of both protocols.
    """

    protocol: str = "coupling"
    levels: Tuple[int, ...] = (1, 4, 16)
    order: int = 8
    n_procs: int = 24
    iterations: int = 50
    insert_every: int = 3
    seed: int = 0xB7E2
    think_low: float = 0.0005
    think_high: float = 0.004
    svc_low: float = 0.001
    svc_high: float = 0.003
    mod_low: float = 0.001
    mod_high: float = 0.003
    split_low: float = 0.002
    split_high: float = 0.006

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; "
                             f"expected one of {PROTOCOLS}")
        if len(self.levels) < 2 or self.levels[0] != 1 \
                or any(n < 1 for n in self.levels):
            raise ValueError(f"levels must be (1, ..., >=1) with height "
                             f">= 2, got {self.levels!r}")
        if self.order < 1 or self.n_procs < 1 or self.iterations < 1:
            raise ValueError("order, n_procs and iterations must be >= 1")
        if self.insert_every < 0:
            raise ValueError(f"insert_every must be >= 0, "
                             f"got {self.insert_every}")

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def n_nodes(self) -> int:
        return sum(self.levels)

    @property
    def leaf_offset(self) -> int:
        """Global node id of the first leaf."""
        return self.n_nodes - self.levels[-1]

    @property
    def initial_occupancy(self) -> int:
        return self.order // 2

    @property
    def post_split_occupancy(self) -> int:
        return (self.order + 1) // 2

    def node_offsets(self) -> Tuple[int, ...]:
        """Global node id of the first node of each level."""
        offsets, total = [], 0
        for count in self.levels:
            offsets.append(total)
            total += count
        return tuple(offsets)

    def insert_mask(self) -> np.ndarray:
        """Boolean ``(n_procs, iterations)`` mask of the insert ops."""
        if self.insert_every <= 0:
            return np.zeros((self.n_procs, self.iterations), dtype=bool)
        ij = np.add.outer(np.arange(self.n_procs),
                          np.arange(self.iterations))
        return ij % self.insert_every == 0

    def tables(self, n_lanes: int) -> "BTreeTables":
        """Per-lane schedule tables (lane-prefix property).

        Lane ``k``'s draws come from ``default_rng(seed + k)`` in a
        fixed order — key, think, service, modify, split — so they are
        independent of ``n_lanes`` and of the protocol.
        """
        P, J, H = self.n_procs, self.iterations, self.n_levels
        think = np.empty((n_lanes, P, J))
        svc = np.empty((n_lanes, P, J, 2, H))
        mod = np.empty((n_lanes, P, J, 2))
        split = np.empty((n_lanes, P, J))
        path = np.empty((n_lanes, P, J, H), dtype=np.int64)
        offsets = self.node_offsets()
        for lane in range(n_lanes):
            rng = np.random.default_rng(self.seed + lane)
            key = rng.random((P, J))
            think[lane] = rng.uniform(self.think_low, self.think_high,
                                      (P, J))
            svc[lane] = rng.uniform(self.svc_low, self.svc_high,
                                    (P, J, 2, H))
            mod[lane] = rng.uniform(self.mod_low, self.mod_high, (P, J, 2))
            split[lane] = rng.uniform(self.split_low, self.split_high,
                                      (P, J))
            for d in range(H):
                path[lane, :, :, d] = offsets[d] \
                    + (key * self.levels[d]).astype(np.int64)
        return BTreeTables(think=think, svc=svc, mod=mod, split=split,
                           path=path)


@dataclass(frozen=True)
class BTreeTables:
    """Schedule tables shared by the vector kernel and the oracle."""

    think: np.ndarray    # (L, P, J)
    svc: np.ndarray      # (L, P, J, 2, H) — pass 0 / redo pass 1
    mod: np.ndarray      # (L, P, J, 2)
    split: np.ndarray    # (L, P, J)
    path: np.ndarray     # (L, P, J, H) global node ids, root -> leaf


@dataclass(frozen=True)
class BTreeLaneStats:
    """Observables of one replication, comparable across kernels.

    Every field — including the float ones — must match the scalar
    oracle *exactly*: both kernels perform the same additions in the
    same per-process order.
    """

    end_time: float
    events: int
    grants_read: Tuple[int, ...]     # per level, root -> leaf
    grants_write: Tuple[int, ...]
    splits: int
    redos: int
    wait_total: float


@dataclass(frozen=True)
class VectorBTreeStats:
    """Per-lane observables of one vectorized batch run."""

    n_lanes: int
    end_time: np.ndarray
    events: np.ndarray
    grants_read: np.ndarray      # (L, H)
    grants_write: np.ndarray     # (L, H)
    splits: np.ndarray
    redos: np.ndarray
    wait_pp: np.ndarray          # (L, P) per-process queueing delays
    #: Interpreted step-loop iterations the batch consumed — the number
    #: of vector dispatches standing in for ``events.sum()`` scalar
    #: dispatches.
    dispatches: int
    #: Sum over dispatches of the live-lane count; ``lane_rounds /
    #: dispatches`` is the mean batch occupancy (lane-occupancy decay
    #: near the end of a run is what erodes wide-batch speedup).
    lane_rounds: int
    #: Same-timestamp cascade rounds (grant-wave continuations).
    cascade_rounds: int

    @property
    def total_events(self) -> int:
        return int(self.events.sum())

    @property
    def mean_live_lanes(self) -> float:
        return self.lane_rounds / self.dispatches if self.dispatches else 0.0

    def lane(self, index: int) -> BTreeLaneStats:
        total = 0.0
        for wait in self.wait_pp[index].tolist():
            total += wait
        return BTreeLaneStats(
            end_time=float(self.end_time[index]),
            events=int(self.events[index]),
            grants_read=tuple(int(g) for g in self.grants_read[index]),
            grants_write=tuple(int(g) for g in self.grants_write[index]),
            splits=int(self.splits[index]),
            redos=int(self.redos[index]),
            wait_total=total,
        )


class VectorBTreeKernel:
    """One batch execution of ``spec`` over ``n_lanes`` replications.

    All state is struct-of-arrays; :meth:`run` is the masked step
    loop.  Single-use: construct, ``run()``, read the returned stats.
    """

    def __init__(self, spec: BTreeDescentSpec, n_lanes: int,
                 tables: Optional[BTreeTables] = None) -> None:
        if n_lanes < 1:
            raise ValueError(f"need at least one lane, got {n_lanes}")
        self.spec = spec
        self.n_lanes = n_lanes
        tab = tables if tables is not None else spec.tables(n_lanes)
        expected = (n_lanes, spec.n_procs, spec.iterations)
        if tab.think.shape != expected:
            raise ValueError(
                f"schedule tables {tab.think.shape} do not match "
                f"(n_lanes, n_procs, iterations)={expected}")
        self._tab = tab

    # ------------------------------------------------------------------
    # State setup
    # ------------------------------------------------------------------
    def _setup(self) -> None:
        spec = self.spec
        L, P = self.n_lanes, spec.n_procs
        N, H = spec.n_nodes, spec.n_levels
        J = spec.iterations
        self.P, self.J, self.H, self.N = P, J, H, N
        self.order = spec.order
        self.leaf_off = spec.leaf_offset
        self.n_leaf = spec.levels[-1]
        self._post_split = spec.post_split_occupancy
        self._proto_k = OP_INS_W if spec.protocol == "coupling" \
            else OP_INS_OPT
        tab = self._tab
        LP = L * P
        # Flat 1-D schedule tables: every hot gather is a single-axis
        # ``take`` on a computed integer index — measurably cheaper in
        # the interpreter than multi-axis fancy indexing.  Index maps:
        # think/split ``g*J + j``; svc ``((g*J + j)*2 + pas)*H + d``;
        # mod ``(g*J + j)*2 + pas``; path ``(g*J + j)*H + d`` with
        # ``g = lane * P + p`` the global process id.
        self.think_t = np.ascontiguousarray(
            tab.think, dtype=np.float64).reshape(-1)
        self.svc_t = np.ascontiguousarray(
            tab.svc, dtype=np.float64).reshape(-1)
        self.mod_t = np.ascontiguousarray(
            tab.mod, dtype=np.float64).reshape(-1)
        self.spl_t = np.ascontiguousarray(
            tab.split, dtype=np.float64).reshape(-1)
        self.path_t = np.ascontiguousarray(
            tab.path, dtype=np.int64).reshape(-1)
        self.isins_t = np.ascontiguousarray(
            spec.insert_mask()).reshape(-1)          # idx: p*J + j

        # Per-process state (flat over g = lane * P + p).
        self.wake = np.ascontiguousarray(tab.think[:, :, 0])
        self.wake_f = self.wake.reshape(LP)       # shared memory view
        self.phase = np.full(LP, PH_THINK, dtype=np.int8)
        self.curj = np.zeros(LP, dtype=np.int64)
        self.opk = np.zeros(LP, dtype=np.int8)
        self.pas = np.zeros(LP, dtype=np.int64)
        self.dep = np.zeros(LP, dtype=np.int64)
        self.heldp = np.full(LP, -1, dtype=np.int64)
        # FCFS queue state: request-time sort keys instead of linked
        # queues (what makes grant waves vectorizable, as in
        # repro.des.vector).  ``wait_pair`` holds the flat lock id
        # ``lane * N + node`` a process waits on (-1 when not waiting).
        self.rt = np.full(LP, _INF)
        self.wait_pair = np.full(LP, -1, dtype=np.int64)
        self.wait_write = np.zeros(LP, dtype=bool)
        # Per-node lock state, flat over ``lane * N + node``.
        self.nread = np.zeros(L * N, dtype=np.int64)
        self.wheld = np.zeros(L * N, dtype=bool)
        self.nqueue = np.zeros(L * N, dtype=np.int64)
        # Per-leaf occupancy, flat over ``lane * n_leaf + leaf_index``.
        self.occ = np.full(L * self.n_leaf, spec.initial_occupancy,
                           dtype=np.int64)
        self.level_of = np.repeat(np.arange(H), spec.levels)
        self.level_fn = np.tile(self.level_of, L)  # level of flat node id
        # Same-timestamp cascade FIFO (granted waiters, wake order).
        self.fq_f = np.zeros(LP, dtype=np.int64)   # lane row: [l*P, l*P+P)
        self.fh = np.zeros(L, dtype=np.int64)
        self.ft = np.zeros(L, dtype=np.int64)
        # Tallies.  ``imm_g`` counts immediate (uncontended) grants;
        # the scalar heap-push event count is recovered in closed form
        # at the end of :meth:`run` — every grant starts exactly one
        # timer and every *wave* grant additionally costs one resume
        # push, so no per-dispatch event bookkeeping is needed.
        self.imm_g = np.zeros(L, dtype=np.int64)
        self.end_time = np.zeros(L)
        self.grants_r = np.zeros(L * H, dtype=np.int64)
        self.grants_w = np.zeros(L * H, dtype=np.int64)
        self.splits = np.zeros(L, dtype=np.int64)
        self.redos = np.zeros(L, dtype=np.int64)
        self.wait_pp = np.zeros(LP)
        self.n_done = np.zeros(L, dtype=np.int64)
        self.active = np.ones(L, dtype=bool)
        self._live = np.arange(L)
        self._rowP = np.arange(L) * P              # lane -> first proc id
        self._colsrow = np.arange(P)[None, :]
        self.dispatches = 0
        self.lane_rounds = 0
        self.cascade_rounds = 0

    # ------------------------------------------------------------------
    # Lock primitives (batched; lanes may repeat within a call)
    # ------------------------------------------------------------------
    def _release_batch(self, lanes: np.ndarray, nodes: np.ndarray,
                       was_write, t_lanes: np.ndarray) -> None:
        """Release one node per entry, then dispatch one FCFS grant
        wave per *unique* released (lane, node) pair.

        ``was_write`` is a bool array, or a plain bool when the whole
        batch shares a mode.  Entries may repeat a lane (several
        processes of one lane releasing at the same timestamp) and even
        a node (two readers dropping a shared parent); same-timestamp
        releases commute, so applying them all before computing the
        waves reproduces the scalar engine's sequential dispatch
        exactly.  Each wave grants the longest compatible queue prefix
        — every waiting reader that requested before the earliest
        waiting writer, or that writer alone once no readers hold — and
        appends grantees to their lane's cascade FIFO for the next
        round.
        """
        N, P, H = self.N, self.P, self.H
        fn = lanes * N + nodes
        if not isinstance(was_write, np.ndarray):
            if was_write:
                self.wheld[fn] = False
            else:
                np.subtract.at(self.nread, fn, 1)
        else:
            wsel = was_write.nonzero()[0]
            if wsel.size:
                self.wheld[fn.take(wsel)] = False
            if wsel.size < fn.size:
                np.subtract.at(self.nread,
                               fn.take((~was_write).nonzero()[0]), 1)
        if fn.size == 1:
            if self.nqueue.take(fn) == 0:
                return
            uf, ul, ut = fn, lanes, t_lanes
        else:
            uf, ui = np.unique(fn, return_index=True)
            qsel = (self.nqueue.take(uf) > 0).nonzero()[0]
            if qsel.size == 0:
                return
            uf = uf.take(qsel)
            src = ui.take(qsel)
            ul = lanes.take(src)
            ut = t_lanes.take(src)
        rows = ul[:, None] * P + self._colsrow
        cand = self.wait_pair.take(rows) == uf[:, None]
        sub_rt = self.rt.take(rows)
        sub_ww = self.wait_write.take(rows)
        rtw = np.where(cand & sub_ww, sub_rt, _INF)
        wrt = rtw.min(axis=1)
        readers = cand & ~sub_ww
        readers &= sub_rt < wrt[:, None]
        rcnt = readers.sum(axis=1)
        rrow, rp = readers.nonzero()
        if rrow.size:
            ag = ul.take(rrow) * P + rp
            self.wait_pp[ag] += ut.take(rrow) - sub_rt[rrow, rp]
            self.rt[ag] = _INF
            self.wait_pair[ag] = -1
            self.nread[uf] += rcnt
            self.nqueue[uf] -= rcnt
            np.add.at(self.grants_r, ul * H + self.level_fn.take(uf),
                      rcnt)
        w_go = (rcnt == 0) & (wrt < _INF)
        w_go &= self.nread.take(uf) == 0
        wsel2 = w_go.nonzero()[0]
        if wsel2.size:
            wp = rtw.take(wsel2, axis=0).argmin(axis=1)
            wl = ul.take(wsel2)
            wg = wl * P + wp
            self.wait_pp[wg] += ut.take(wsel2) - self.rt.take(wg)
            self.rt[wg] = _INF
            self.wait_pair[wg] = -1
            wfn = uf.take(wsel2)
            self.wheld[wfn] = True
            self.nqueue[wfn] -= 1
            np.add.at(self.grants_w, wl * H + self.level_fn.take(wfn), 1)
        # FIFO-append every grantee, grouped by lane (within-wave order
        # is immaterial: same-timestamp continuations commute).
        if rrow.size and wsel2.size:
            al_all = np.concatenate([ul.take(rrow), wl])
            p_all = np.concatenate([rp, wp])
        elif rrow.size:
            al_all, p_all = ul.take(rrow), rp
        elif wsel2.size:
            al_all, p_all = wl, wp
        else:
            return
        n = al_all.size
        if n == 1:
            lane = al_all[0]
            self.fq_f[lane * P + self.ft[lane]] = p_all[0]
            self.ft[lane] += 1
            return
        order = al_all.argsort(kind="stable")
        sl = al_all.take(order)
        sp = p_all.take(order)
        start = np.empty(n, dtype=bool)
        start[0] = True
        np.not_equal(sl[1:], sl[:-1], out=start[1:])
        seg_first = start.nonzero()[0]
        within = np.arange(n) - seg_first.take(start.cumsum() - 1)
        self.fq_f[sl * P + self.ft.take(sl) + within] = sp
        np.add.at(self.ft, sl, 1)

    def _release_segments(self, segs) -> None:
        """Flush ``(lanes, nodes, was_write, t)`` release segments —
        ``was_write`` per segment is a bool or an array — as one
        :meth:`_release_batch` call."""
        if len(segs) == 1:
            self._release_batch(*segs[0])
            return
        flags = [s[2] for s in segs]
        if all(isinstance(f, bool) for f in flags) and len(set(flags)) == 1:
            ww = flags[0]
        else:
            ww = np.concatenate(
                [f if isinstance(f, np.ndarray)
                 else np.full(s[0].size, f, dtype=bool)
                 for s, f in zip(segs, flags)])
        self._release_batch(np.concatenate([s[0] for s in segs]),
                            np.concatenate([s[1] for s in segs]),
                            ww,
                            np.concatenate([s[3] for s in segs]))

    def _request(self, lanes: np.ndarray, ps: np.ndarray,
                 nodes: np.ndarray, write: np.ndarray, depth: np.ndarray,
                 t_ls: np.ndarray, pending_rel=None) -> None:
        """One lock request per lane (lanes unique: requests only come
        from primary timer fires).  Grant immediately when the queue is
        empty and the mode is compatible — the process continues within
        the same dispatch, as in the scalar engine's fast path — else
        enqueue with the request time as FCFS key.

        ``pending_rel`` carries the dispatch's primary release segments
        so the granted continuations' own releases join them in a
        single wave computation — sound because only one process fires
        per lane per dispatch, so a lane never requests a node it is
        releasing here (the one release+request phase, the optimistic
        redo, releases the leaf and requests the root, and the tree
        height is at least 2)."""
        g = lanes * self.P + ps
        self.dep[g] = depth
        fn = lanes * self.N + nodes
        free = (self.nqueue.take(fn) == 0) & ~self.wheld.take(fn)
        free &= ~write | (self.nread.take(fn) == 0)
        bsel = (~free).nonzero()[0]
        if bsel.size:
            gb = g.take(bsel)
            self.rt[gb] = t_ls.take(bsel)
            self.wait_pair[gb] = fn.take(bsel)
            self.wait_write[gb] = write.take(bsel)
            self.nqueue[fn.take(bsel)] += 1
            self.phase[gb] = PH_WAIT
        gsel = free.nonzero()[0]
        if gsel.size:
            fg = fn.take(gsel)
            wg = write.take(gsel)
            lg = lanes.take(gsel)
            dg = depth.take(gsel)
            ws = wg.nonzero()[0]
            if ws.size:
                self.wheld[fg.take(ws)] = True
                self.grants_w[lg.take(ws) * self.H + dg.take(ws)] += 1
            if ws.size < gsel.size:
                rs = (~wg).nonzero()[0]
                self.nread[fg.take(rs)] += 1
                self.grants_r[lg.take(rs) * self.H + dg.take(rs)] += 1
            self.imm_g[lg] += 1
            self._grant_continuation(lg, ps.take(gsel), t_ls.take(gsel),
                                     pending_rel)
        elif pending_rel:
            self._release_segments(pending_rel)

    def _grant_continuation(self, lanes: np.ndarray, ps: np.ndarray,
                            t_ls: np.ndarray, pending_rel=None) -> None:
        """Continue processes just granted the node at their ``dep``.

        Descent grants release the parent and start the node's service
        timer; a leaf grant of an insert runs the safety check
        (coupling keeps the parent across an unsafe leaf) and starts
        the modify timer.  Lanes may repeat (batched cascade round).
        """
        P, H, J = self.P, self.H, self.J
        Hm1 = H - 1
        g = lanes * P + ps
        d = self.dep.take(g)
        j = self.curj.take(g)
        k = self.opk.take(g)
        base = g * J + j
        leaf_ins = (k != OP_SEARCH) & (d == Hm1)
        rel_parts = list(pending_rel) if pending_rel else []
        gsel = (~leaf_ins).nonzero()[0]
        if gsel.size:
            gg = g.take(gsel)
            bg = base.take(gsel)
            dg = d.take(gsel)
            tg = t_ls.take(gsel)
            self.wake_f[gg] = tg + self.svc_t.take(
                (bg * 2 + self.pas.take(gg)) * H + dg)
            self.phase[gg] = PH_SVC
            hsel = (dg > 0).nonzero()[0]
            if hsel.size:
                rel_parts.append((
                    lanes.take(gsel).take(hsel),
                    self.path_t.take(bg.take(hsel) * H
                                     + dg.take(hsel) - 1),
                    k.take(gsel).take(hsel) == OP_INS_W,
                    tg.take(hsel)))
        msel = leaf_ins.nonzero()[0]
        if msel.size:
            gm = g.take(msel)
            bm = base.take(msel)
            tm = t_ls.take(msel)
            lm = lanes.take(msel)
            parent = self.path_t.take(bm * H + (Hm1 - 1))
            leaf = self.path_t.take(bm * H + Hm1)
            opt = k.take(msel) == OP_INS_OPT
            lf = lm * self.n_leaf + leaf - self.leaf_off
            let_go = opt | (self.occ.take(lf) < self.order)
            self.heldp[gm] = np.where(let_go, -1, parent)
            self.wake_f[gm] = tm + self.mod_t.take(
                bm * 2 + self.pas.take(gm))
            self.phase[gm] = PH_MOD
            lsel = let_go.nonzero()[0]
            if lsel.size:
                # Parent held W by coupling, R by the optimistic pass.
                rel_parts.append((lm.take(lsel), parent.take(lsel),
                                  ~opt.take(lsel), tm.take(lsel)))
        if rel_parts:
            self._release_segments(rel_parts)

    def _end_op(self, lanes: np.ndarray, ps: np.ndarray, j: np.ndarray,
                t_ls: np.ndarray) -> None:
        g = lanes * self.P + ps
        jn = j + 1
        done = jn == self.J
        dsel = done.nonzero()[0]
        if dsel.size:
            self.phase[g.take(dsel)] = PH_DONE
            self.n_done[lanes.take(dsel)] += 1
        if dsel.size < g.size:
            csel = (~done).nonzero()[0]
            gc = g.take(csel)
            jc = jn.take(csel)
            self.curj[gc] = jc
            self.phase[gc] = PH_THINK
            self.wake_f[gc] = t_ls.take(csel) \
                + self.think_t.take(gc * self.J + jc)

    # ------------------------------------------------------------------
    # The step loop
    # ------------------------------------------------------------------
    def _iterate(self, li: np.ndarray) -> None:
        P, J, Hm1 = self.P, self.J, self.H - 1
        order = self.order
        full = li.size == self.n_lanes
        if full:
            pi = self.wake.argmin(axis=1)
            g = self._rowP + pi
        else:
            pi = self.wake.take(li, axis=0).argmin(axis=1)
            g = li * P + pi
        t = self.wake_f.take(g)
        if math.isinf(t.max()):
            raise RuntimeError("vector btree kernel stalled: active lane "
                               "with no pending timer")
        self.wake_f[g] = _INF
        K = li.size
        if full:
            np.copyto(self.end_time, t)
            self.fh.fill(0)
            self.ft.fill(0)
        else:
            self.end_time[li] = t
            self.fh[li] = 0
            self.ft[li] = 0
        self.dispatches += 1
        self.lane_rounds += K

        ph = self.phase.take(g)
        j = self.curj.take(g)
        k = self.opk.take(g)
        base = g * J + j
        req = np.full(K, -1, dtype=np.int64)
        req_w = np.zeros(K, dtype=bool)
        req_d = np.zeros(K, dtype=np.int64)
        endop = np.zeros(K, dtype=bool)
        rel_seg: List[Tuple[np.ndarray, np.ndarray, bool, np.ndarray]] = []

        tsel = (ph == PH_THINK).nonzero()[0]
        if tsel.size:
            gt = g.take(tsel)
            jt = j.take(tsel)
            kk = np.where(self.isins_t.take(pi.take(tsel) * J + jt),
                          self._proto_k, OP_SEARCH)
            self.opk[gt] = kk.astype(np.int8)
            self.pas[gt] = 0
            self.heldp[gt] = -1
            req[tsel] = self.path_t.take(base.take(tsel) * self.H)
            req_w[tsel] = kk == OP_INS_W

        ssel = (ph == PH_SVC).nonzero()[0]
        if ssel.size:
            ds = self.dep.take(g.take(ssel))
            finm = (k.take(ssel) == OP_SEARCH) & (ds == Hm1)
            fsel = ssel.take(finm.nonzero()[0])
            if fsel.size:
                # Search done: release the leaf (held R) and end the op.
                rel_seg.append((li.take(fsel),
                                self.path_t.take(base.take(fsel) * self.H
                                                 + Hm1),
                                False, t.take(fsel)))
                endop[fsel] = True
            if fsel.size < ssel.size:
                dsel = ssel.take((~finm).nonzero()[0])
                dn = self.dep.take(g.take(dsel)) + 1
                kd = k.take(dsel)
                req[dsel] = self.path_t.take(base.take(dsel) * self.H
                                             + dn)
                req_w[dsel] = (kd == OP_INS_W) \
                    | ((kd == OP_INS_OPT) & (dn == Hm1))
                req_d[dsel] = dn

        msel = (ph == PH_MOD).nonzero()[0]
        psel = (ph == PH_SPLIT).nonzero()[0]
        if msel.size:
            jm = j.take(msel)
            leaf = self.path_t.take(base.take(msel) * self.H + Hm1)
            lf = li.take(msel) * self.n_leaf + leaf - self.leaf_off
            occv = self.occ.take(lf)
            km = k.take(msel)
            k1 = (km == OP_INS_W).nonzero()[0]
            if k1.size:
                nocc = occv.take(k1) + 1
                self.occ[lf.take(k1)] = nocc
                overm = nocc > order
                osel = k1.take(overm.nonzero()[0])
                if osel.size:
                    io = msel.take(osel)
                    go = g.take(io)
                    self.wake_f[go] = t.take(io) \
                        + self.spl_t.take(base.take(io))
                    self.phase[go] = PH_SPLIT
                if osel.size < k1.size:
                    usel = k1.take((~overm).nonzero()[0])
                    iu = msel.take(usel)
                    rel_seg.append((li.take(iu), leaf.take(usel), True,
                                    t.take(iu)))
                    endop[iu] = True
            if k1.size < msel.size:
                k2 = (km == OP_INS_OPT).nonzero()[0]
                safem = occv.take(k2) < order
                ssafe = k2.take(safem.nonzero()[0])
                if ssafe.size:
                    isf = msel.take(ssafe)
                    self.occ[lf.take(ssafe)] = occv.take(ssafe) + 1
                    rel_seg.append((li.take(isf), leaf.take(ssafe), True,
                                    t.take(isf)))
                    endop[isf] = True
                if ssafe.size < k2.size:
                    # Unsafe: release the leaf, then redo — a full
                    # W-coupled descent with the pass-1 draws (the
                    # release dispatches before the root request, as
                    # in the scalar redo path).
                    suns = k2.take((~safem).nonzero()[0])
                    iun = msel.take(suns)
                    rel_seg.append((li.take(iun), leaf.take(suns), True,
                                    t.take(iun)))
                    gu = g.take(iun)
                    self.redos[li.take(iun)] += 1
                    self.opk[gu] = OP_INS_W
                    self.pas[gu] = 1
                    req[iun] = self.path_t.take(base.take(iun) * self.H)
                    req_w[iun] = True
        if psel.size:
            gp_ = g.take(psel)
            leafp = self.path_t.take(base.take(psel) * self.H + Hm1)
            self.occ[li.take(psel) * self.n_leaf + leafp - self.leaf_off] \
                = self._post_split
            self.splits[li.take(psel)] += 1
            # Split done: release the kept parent, then the leaf.
            rel_seg.append((li.take(psel), self.heldp.take(gp_), True,
                            t.take(psel)))
            rel_seg.append((li.take(psel), leafp, True, t.take(psel)))
            self.heldp[gp_] = -1
            endop[psel] = True

        # A process's own releases dispatch before its next request or
        # timer; independent lanes never interact and the only lane
        # with both a release and a request this dispatch (the redo)
        # touches two distinct nodes, so the primary releases merge
        # into the request continuations' wave computation.
        rq = (req >= 0).nonzero()[0]
        if rq.size:
            self._request(li.take(rq), pi.take(rq), req.take(rq),
                          req_w.take(rq), req_d.take(rq), t.take(rq),
                          rel_seg if rel_seg else None)
        elif rel_seg:
            self._release_segments(rel_seg)
        esel = endop.nonzero()[0]
        if esel.size:
            self._end_op(li.take(esel), pi.take(esel), j.take(esel),
                         t.take(esel))

        # Zero-time cascade, breadth-first: each round continues every
        # process granted by the previous round's waves, exactly the
        # scalar engine's resume-push order at one timestamp (the
        # event that fired runs to completion first, grantees follow in
        # wave order; same-timestamp continuations commute).
        while True:
            pend = (self.ft.take(li) > self.fh.take(li)).nonzero()[0]
            if pend.size == 0:
                break
            self.cascade_rounds += 1
            sel_l = li.take(pend)
            cnt = self.ft.take(sel_l) - self.fh.take(sel_l)
            rep_l = sel_l.repeat(cnt)
            total = rep_l.size
            seg_first = cnt.cumsum() - cnt
            within = np.arange(total) - seg_first.repeat(cnt)
            procs = self.fq_f.take(rep_l * P + self.fh.take(rep_l)
                                   + within)
            self.fh[sel_l] += cnt
            self._grant_continuation(rep_l, procs, t.take(pend).repeat(cnt))

        nd = self.n_done.take(li)
        if nd.max() >= P:
            self.active[li.take((nd >= P).nonzero()[0])] = False
            self._live = self.active.nonzero()[0]

    def run(self) -> VectorBTreeStats:
        self._setup()
        while self._live.size:
            self._iterate(self._live)
        L, P, J = self.n_lanes, self.P, self.J
        # Scalar heap-push count, in closed form: P spawns + P initial
        # thinks + P*(J-1) follow-up thinks + one timer per split and
        # per grant, + one resume push per *contended* grant.
        grants = self.grants_r.reshape(L, self.H).sum(axis=1) \
            + self.grants_w.reshape(L, self.H).sum(axis=1)
        events = P * (J + 1) + self.splits + 2 * grants - self.imm_g
        return VectorBTreeStats(
            n_lanes=L, end_time=self.end_time, events=events,
            grants_read=self.grants_r.reshape(L, self.H),
            grants_write=self.grants_w.reshape(L, self.H),
            splits=self.splits, redos=self.redos,
            wait_pp=self.wait_pp.reshape(L, self.P),
            dispatches=self.dispatches, lane_rounds=self.lane_rounds,
            cascade_rounds=self.cascade_rounds,
        )


def run_btree_vectorized(spec: BTreeDescentSpec, n_lanes: int,
                         tables: Optional[BTreeTables] = None,
                         instruments=None,
                         ) -> VectorBTreeStats:
    """Run ``n_lanes`` replications of ``spec`` through the vector
    kernel and return the per-lane stats.

    ``instruments`` (an
    :class:`~repro.obs.instruments.Instrumentation`) additionally
    records ``vector_btree.dispatches`` / ``vector_btree.lane_rounds``
    / ``vector_btree.cascade_rounds`` — the same occupancy counters the
    returned stats carry, exposed through telemetry so lane-occupancy
    decay is measurable across a sweep."""
    stats = VectorBTreeKernel(spec, n_lanes, tables=tables).run()
    if instruments is not None:
        instruments.counter("vector_btree.dispatches").inc(stats.dispatches)
        instruments.counter("vector_btree.lane_rounds").inc(stats.lane_rounds)
        instruments.counter("vector_btree.cascade_rounds").inc(
            stats.cascade_rounds)
    return stats


def run_scalar_btree_reference(spec: BTreeDescentSpec, lane: int,
                               tables: Optional[BTreeTables] = None,
                               ) -> BTreeLaneStats:
    """Replay lane ``lane`` of ``spec`` through the *scalar* kernel.

    This is the oracle: the real :class:`~repro.des.engine.Simulator`
    and :class:`~repro.des.rwlock.RWLock` execute the identical
    schedule, and the returned :class:`BTreeLaneStats` must match the
    vector kernel's lane bit-for-bit on every field.
    """
    from repro.des.engine import Simulator
    from repro.des.rwlock import RWLock

    tab = tables if tables is not None else spec.tables(lane + 1)
    think_rows = tab.think[lane].tolist()
    svc_rows = tab.svc[lane].tolist()
    mod_rows = tab.mod[lane].tolist()
    spl_rows = tab.split[lane].tolist()
    path_rows = tab.path[lane].tolist()
    is_ins = spec.insert_mask().tolist()

    P, J, H = spec.n_procs, spec.iterations, spec.n_levels
    order, leaf_off = spec.order, spec.leaf_offset
    post_split = spec.post_split_occupancy
    coupling = spec.protocol == "coupling"

    sim = Simulator()
    locks = [RWLock(f"n{i}") for i in range(spec.n_nodes)]
    occ = [spec.initial_occupancy] * spec.levels[-1]
    waits = [0.0] * P
    counters = {"splits": 0, "redos": 0}

    def search_op(p: int, j: int):
        pth = path_rows[p][j]
        svc = svc_rows[p][j][0]
        prev = None
        for d in range(H):
            wait = yield locks[pth[d]].acquire_read
            waits[p] += wait
            if prev is not None:
                yield locks[prev].release_cmd
            prev = pth[d]
            yield svc[d]
        yield locks[prev].release_cmd

    def coupled_insert(p: int, j: int, pas: int):
        pth = path_rows[p][j]
        svc = svc_rows[p][j][pas]
        prev = None
        for d in range(H - 1):
            wait = yield locks[pth[d]].acquire_write
            waits[p] += wait
            if prev is not None:
                yield locks[prev].release_cmd
            prev = pth[d]
            yield svc[d]
        leaf = pth[H - 1]
        wait = yield locks[leaf].acquire_write
        waits[p] += wait
        idx = leaf - leaf_off
        if occ[idx] < order:          # safe: every ancestor is released
            yield locks[prev].release_cmd
            prev = None
        yield mod_rows[p][j][pas]
        occ[idx] += 1
        if occ[idx] > order:
            yield spl_rows[p][j]
            occ[idx] = post_split
            counters["splits"] += 1
        if prev is not None:
            yield locks[prev].release_cmd
        yield locks[leaf].release_cmd

    def optimistic_insert(p: int, j: int):
        pth = path_rows[p][j]
        svc = svc_rows[p][j][0]
        prev = None
        for d in range(H - 1):
            wait = yield locks[pth[d]].acquire_read
            waits[p] += wait
            if prev is not None:
                yield locks[prev].release_cmd
            prev = pth[d]
            yield svc[d]
        leaf = pth[H - 1]
        wait = yield locks[leaf].acquire_write
        waits[p] += wait
        yield locks[prev].release_cmd
        yield mod_rows[p][j][0]
        idx = leaf - leaf_off
        if occ[idx] < order:
            occ[idx] += 1
            yield locks[leaf].release_cmd
        else:
            yield locks[leaf].release_cmd
            counters["redos"] += 1
            yield from coupled_insert(p, j, 1)

    def worker(p: int):
        inserts = is_ins[p]
        for j in range(J):
            yield think_rows[p][j]
            if inserts[j]:
                if coupling:
                    yield from coupled_insert(p, j, 0)
                else:
                    yield from optimistic_insert(p, j)
            else:
                yield from search_op(p, j)

    for p in range(P):
        sim.spawn(worker(p))
    sim.run()

    offsets = spec.node_offsets()
    grants_read, grants_write = [], []
    for d in range(H):
        level = locks[offsets[d]:offsets[d] + spec.levels[d]]
        grants_read.append(sum(lk.grants_read for lk in level))
        grants_write.append(sum(lk.grants_write for lk in level))
    wait_total = 0.0
    for wait in waits:
        wait_total += wait
    return BTreeLaneStats(
        end_time=sim.now,
        events=sim._sequence,
        grants_read=tuple(grants_read),
        grants_write=tuple(grants_write),
        splits=counters["splits"],
        redos=counters["redos"],
        wait_total=wait_total,
    )


def assert_btree_equivalent(vector: VectorBTreeStats,
                            scalar: Sequence[BTreeLaneStats],
                            lanes: Optional[Sequence[int]] = None) -> None:
    """Assert the vector run reproduces the scalar lanes bit-for-bit.

    Every compared field is exact — including ``end_time`` and
    ``wait_total``, because both kernels perform the same IEEE-754
    additions in the same per-process order.
    """
    indices: List[int] = list(lanes) if lanes is not None \
        else list(range(len(scalar)))
    for offset, lane in enumerate(indices):
        ref = scalar[offset]
        got = vector.lane(lane)
        if got != ref:
            raise AssertionError(
                f"lane {lane} diverged from the scalar kernel:\n"
                f"  vector={got}\n  scalar={ref}")
