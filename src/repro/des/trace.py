"""Event tracing for simulation debugging.

A :class:`TraceLog` attached to a :class:`~repro.des.engine.Simulator`
records one entry per process lifecycle event and per command the kernel
executes (hold / acquire / grant / release), in a bounded ring buffer so
long runs cannot exhaust memory.  The trace is how one answers "what was
operation 812 doing when the root saturated?" without re-instrumenting
the algorithms.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional

from repro.errors import ConfigurationError

#: Event kinds recorded by the engine.
SPAWN = "spawn"
FINISH = "finish"
HOLD = "hold"
REQUEST = "request"
GRANT = "grant"
RELEASE = "release"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event."""

    time: float
    kind: str
    pid: int
    process: str
    #: Event-specific detail: hold duration, lock name + mode, ...
    detail: str = ""

    def __str__(self) -> str:
        return (f"[{self.time:12.4f}] {self.kind:<8} "
                f"{self.process} ({self.pid}) {self.detail}")


class TraceLog:
    """Bounded in-memory event log."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, time: float, kind: str, pid: int, process: str,
               detail: str = "") -> None:
        self._events.append(TraceEvent(time, kind, pid, process, detail))
        self._recorded += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def total_recorded(self) -> int:
        """Events recorded over the whole run (>= len() once the ring
        has wrapped)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer."""
        return self._recorded - len(self._events)

    def events(self, kind: Optional[str] = None,
               pid: Optional[int] = None,
               predicate: Optional[Callable[[TraceEvent], bool]] = None,
               ) -> List[TraceEvent]:
        """Filtered view of the retained events."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if pid is not None and event.pid != pid:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def timeline(self, pid: int) -> List[TraceEvent]:
        """Everything one process did, in order."""
        return self.events(pid=pid)

    def format(self, limit: int = 200) -> str:
        """Human-readable dump of the last ``limit`` events."""
        tail = list(self._events)[-limit:]
        lines = [str(event) for event in tail]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier events dropped ...")
        return "\n".join(lines)
