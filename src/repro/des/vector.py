"""Vectorized batch-replication DES kernel (struct-of-arrays).

The scalar kernel (:mod:`repro.des.engine`) pays one interpreted
dispatch per event per replication; at replication-sweep scale that
interpreter overhead dominates (``BENCH_kernel.json`` tracks it).  This
module amortizes it: ``n_lanes`` *independent replications* of the same
FCFS reader/writer lock-contention workload advance **in lock-step
within one process**, their whole simulation state held in
``(n_lanes, n_procs)`` numpy arrays —

* ``wake``  — each process's next timer (hold end / think end),
* ``phase`` — SLEEPING / HOLDING / WAITING / DONE event kinds,
* ``rt``    — FCFS request timestamps of the processes queued on the
  lane's lock (the grant queue, kept as a sort key instead of a linked
  queue, which is what makes grant waves vectorizable),
* per-lane clocks, reader counts, queued-writer counts and the
  time-weighted writer-presence accumulators of
  :class:`~repro.des.rwlock.RWLock`.

Each iteration of :meth:`VectorLockKernel.run` advances **every** live
lane by at least one event: lanes whose next event shares a dispatch
kind (a release, a grant wave, an arrival) are processed together by
one masked numpy operation, so one interpreted dispatch serves the
whole batch.  Two structural moves keep the interpreted loop short:

1. **Bulk arrival absorption** — while a lane's lock is busy for every
   requester (a writer holds it, or readers hold it with a non-empty
   queue), every think-end before the next release can only *enqueue*.
   Those arrivals are absorbed by one vectorized mask per iteration,
   in any order, because the FCFS order lives in ``rt`` rather than in
   insertion order.
2. **Vectorized grant waves** — FCFS grants the longest compatible
   queue prefix.  With request times as the queue, that prefix is
   exactly "every waiting reader that requested before the earliest
   waiting writer" (or the earliest writer alone), one masked
   comparison per release instead of a per-waiter loop.

The semantics mirror :class:`repro.des.engine.Simulator` +
:class:`repro.des.rwlock.RWLock` on this workload *exactly*:
:func:`run_scalar_reference` replays any lane through the real scalar
kernel, and :func:`assert_equivalent` checks end times, event counts
and grant counts bit-for-bit (both kernels perform the same IEEE-754
additions in the same per-process order), plus the time-weighted
accumulators to float tolerance (they integrate the same piecewise-
constant function at different breakpoints).  Ties are avoided by
construction — hold and think times are continuous pseudo-random
draws, so two distinct timers almost surely never collide, and the
scalar/vector cross-check would catch a collision that mattered.

See ``docs/performance.md`` ("Vectorized batch-replication kernel")
for the measured speedups and when batching wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "LockContentionSpec",
    "LaneStats",
    "VectorRunStats",
    "VectorLockKernel",
    "run_vectorized",
    "run_scalar_reference",
    "assert_equivalent",
]

#: Process phases (the event kind the process's next event dispatches).
SLEEPING = 0   # timer pending: think end -> lock request
HOLDING = 1    # timer pending: hold end -> release
WAITING = 2    # queued on the lock; no timer, FCFS key in ``rt``
DONE = 3

_INF = math.inf
#: Smallest positive double.  Spawn-order FCFS keys for the t=0 request
#: wave are distinct multiples of it: they order the queue by spawn
#: index yet sort before any real (positive) request time.
_TINY = 5e-324


@dataclass(frozen=True)
class LockContentionSpec:
    """The replicated lock-contention workload.

    Every lane runs ``n_procs`` processes for ``iterations`` cycles of
    ``acquire -> hold -> release -> think`` against one FCFS R/W lock;
    every ``writer_every``-th process (0, writer_every, ...) acquires
    in W mode, the rest in R mode (``writer_every=0`` means readers
    only).  Hold and think durations are continuous pseudo-random
    draws seeded per lane — lane ``k`` always sees the same schedule
    whatever the batch size, so batches of different widths share lane
    prefixes and scalar replays stay comparable.
    """

    n_procs: int = 32
    iterations: int = 250
    writer_every: int = 4
    seed: int = 0xB7EE
    hold_low: float = 0.001
    hold_high: float = 0.011
    think_low: float = 0.0005
    think_high: float = 0.004

    def writer_mask(self) -> np.ndarray:
        """Boolean ``(n_procs,)`` mask of the W-mode processes."""
        if self.writer_every <= 0:
            return np.zeros(self.n_procs, dtype=bool)
        return np.arange(self.n_procs) % self.writer_every == 0

    def durations(self, n_lanes: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(hold, think)`` duration tables, shape ``(n_lanes, P, J)``.

        Lane ``k``'s draws come from ``default_rng(seed + k)`` so they
        are independent of ``n_lanes`` (lane-prefix property).
        """
        shape = (self.n_procs, self.iterations)
        hold = np.empty((n_lanes,) + shape)
        think = np.empty((n_lanes,) + shape)
        for lane in range(n_lanes):
            rng = np.random.default_rng(self.seed + lane)
            hold[lane] = rng.uniform(self.hold_low, self.hold_high, shape)
            think[lane] = rng.uniform(self.think_low, self.think_high,
                                      shape)
        return hold, think


@dataclass(frozen=True)
class LaneStats:
    """Observables of one replication, comparable across kernels."""

    end_time: float
    events: int
    grants_read: int
    grants_write: int
    time_writer_held: float
    time_writer_present: float
    time_held_any: float


@dataclass(frozen=True)
class VectorRunStats:
    """Per-lane observables of one vectorized batch run."""

    n_lanes: int
    end_time: np.ndarray
    events: np.ndarray
    grants_read: np.ndarray
    grants_write: np.ndarray
    time_writer_held: np.ndarray
    time_writer_present: np.ndarray
    time_held_any: np.ndarray
    #: Interpreted step-loop iterations the whole batch consumed — the
    #: number of vector dispatches standing in for ``events.sum()``
    #: scalar dispatches.
    iterations: int

    @property
    def total_events(self) -> int:
        return int(self.events.sum())

    def lane(self, index: int) -> LaneStats:
        return LaneStats(
            end_time=float(self.end_time[index]),
            events=int(self.events[index]),
            grants_read=int(self.grants_read[index]),
            grants_write=int(self.grants_write[index]),
            time_writer_held=float(self.time_writer_held[index]),
            time_writer_present=float(self.time_writer_present[index]),
            time_held_any=float(self.time_held_any[index]),
        )


class VectorLockKernel:
    """One batch execution of ``spec`` over ``n_lanes`` replications.

    All state is struct-of-arrays; :meth:`run` is the masked step loop.
    Single-use: construct, ``run()``, read the returned stats.
    """

    def __init__(self, spec: LockContentionSpec, n_lanes: int,
                 durations: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 ) -> None:
        if n_lanes < 1:
            raise ValueError(f"need at least one lane, got {n_lanes}")
        if spec.n_procs < 1 or spec.iterations < 1:
            raise ValueError("the workload needs >= 1 process and "
                             ">= 1 iteration")
        self.spec = spec
        self.n_lanes = n_lanes
        hold, think = durations if durations is not None \
            else spec.durations(n_lanes)
        expected = (n_lanes, spec.n_procs, spec.iterations)
        if hold.shape != expected or think.shape != expected:
            raise ValueError(
                f"duration tables {hold.shape}/{think.shape} do not "
                f"match (n_lanes, n_procs, iterations)={expected}")
        self._hold = np.ascontiguousarray(hold, dtype=np.float64)
        self._think = np.ascontiguousarray(think, dtype=np.float64)

    def run(self) -> VectorRunStats:
        spec = self.spec
        L, P, J = self.n_lanes, spec.n_procs, spec.iterations
        hold_tab, think_tab = self._hold, self._think
        is_writer = spec.writer_mask()
        iw_row = is_writer[None, :]

        # --- struct-of-arrays state ----------------------------------
        # One timer array per timed phase (INF elsewhere), so the
        # per-iteration minima are argmin+gather with no mask
        # materialization.  ``hold_next`` caches each process's next
        # hold duration (= hold_tab[l, p, jnext[l, p]]), turning every
        # grant path into one masked full-array store.  ``rt_w``
        # duplicates the waiting *writers'* FCFS keys so the earliest
        # queued writer is a plain row argmin.
        hold_wake = np.full((L, P), _INF)    # HOLDING: hold-end times
        sleep_wake = np.full((L, P), _INF)   # SLEEPING: think-end times
        rt = np.full((L, P), _INF)           # WAITING: FCFS keys
        rt_w = np.full((L, P), _INF)         # WAITING writers' keys
        jnext = np.zeros((L, P), dtype=np.int64)  # current cycle index
        hold_next = hold_tab[:, :, 0].copy()
        nread = np.zeros(L, dtype=np.int64)       # readers holding
        wheld = np.zeros(L, dtype=bool)           # writer holding
        nwait = np.zeros(L, dtype=np.int64)       # queued requests
        # Event counts mirror the scalar kernel's heap-push sequence:
        # P spawn records, +1 per hold-end push (grant), +1 per
        # think-end push (release), +1 per resume push (queued grant).
        events = np.full(L, P, dtype=np.int64)
        end_time = np.zeros(L)
        n_done = np.zeros(L, dtype=np.int64)
        # Time-weighted accumulators (RWLock's).  time_writer_held and
        # the grant counts are structural — every process is granted
        # exactly once per cycle — so they are computed after the loop;
        # writer-present and held-any are interval-accounted in-loop:
        # an interval opens/closes only when the lane's predicate
        # actually flips, which one masked comparison detects without
        # per-event clock advances.
        twp = np.zeros(L)   # writer held or queued
        tha = np.zeros(L)   # held in any mode
        active = np.ones(L, dtype=bool)

        # --- initial wave: all P processes request at t=0 in spawn
        # order.  The scalar rule grants the longest compatible spawn
        # prefix — the leading readers up to the first writer (or the
        # first writer alone); everyone behind queues in spawn order,
        # with spawn-index FCFS keys.
        w_idx = np.nonzero(is_writer)[0]
        first_writer = int(w_idx[0]) if w_idx.size else P
        ngrant = 1 if first_writer == 0 else first_writer
        hold_wake[:, :ngrant] = hold_tab[:, :ngrant, 0]
        events += ngrant                  # the granted hold-end pushes
        if first_writer == 0:
            wheld[:] = True
        else:
            nread[:] = ngrant
        queued_writers = 0
        if ngrant < P:
            keys = np.arange(ngrant, P) * _TINY
            rt[:, ngrant:] = keys
            rt_w[:, ngrant:] = np.where(is_writer[ngrant:], keys, _INF)
            nwait[:] = P - ngrant
            queued_writers = int(is_writer[ngrant:].sum())

        # Interval state for the flip-accounted accumulators.
        wp_prev = wheld | (queued_writers > 0)
        hp_prev = wheld | (nread > 0)
        wp_start = np.zeros(L)
        hp_start = np.zeros(L)

        li0 = np.arange(L)
        cols = np.arange(P)[None, :]
        j_max = J - 1
        iterations = 0
        all_active = True

        # --- the masked step loop ------------------------------------
        # Every branch below updates state with full-array masked ops
        # (`where`/`copyto`): gathers at (lane, argmin) positions are
        # harmless for lanes outside the mask and the stores write the
        # old value back, so no per-branch index lists are built.  The
        # dominant cost at small batch widths is numpy *call* overhead,
        # so the common high-contention case — every lane busy, every
        # lane releasing — takes a fast path of plain scatters with no
        # per-lane masking at all.
        while True:
            iterations += 1
            pi = hold_wake.argmin(axis=1)
            t_rel = hold_wake[li0, pi]
            busy = wheld | ((nread > 0) & (nwait > 0))
            if not all_active:
                busy &= active
            all_busy = bool(busy.all())

            # (1) bulk-absorb passive arrivals: while the lock is busy
            # for every requester, a think-end before the next release
            # can only enqueue.  Enqueueing pushes no event and never
            # flips an accumulator predicate (the writer already holds,
            # or a writer is already queued ahead of held readers), so
            # absorbing the arrivals out of time order is invisible.
            absorb = sleep_wake < t_rel[:, None]
            if not all_busy:
                absorb &= busy[:, None]
            if absorb.any():
                np.copyto(rt, sleep_wake, where=absorb)
                np.copyto(rt_w, sleep_wake, where=absorb & iw_row)
                np.copyto(sleep_wake, _INF, where=absorb)
                nwait += absorb.sum(axis=1)
                # t_arr is stale for absorbed lanes, but they are busy
                # and take the release branch regardless.

            # Earliest queued writer per lane: both the FCFS pivot of
            # the grant wave and the "writer queued" half of the
            # writer-present predicate (so no separate waiting-writer
            # counter is maintained).
            wpos = rt_w.argmin(axis=1)
            wrt = rt_w[li0, wpos]

            # (2) pick each lane's next event kind.  Busy lanes always
            # release next (every earlier arrival was just absorbed);
            # ties are impossible by construction.
            if all_busy:
                rel = busy
                rel_any, arr_any = True, False
            else:
                ai = sleep_wake.argmin(axis=1)
                t_arr = sleep_wake[li0, ai]
                rel = (busy | (t_rel <= t_arr)) & (t_rel < _INF)
                arr = ~rel & (t_arr < _INF)
                if not all_active:
                    rel &= active
                    arr &= active
                rel_any = bool(rel.any())
                arr_any = bool(arr.any())
                if not rel_any and not arr_any:
                    if active.any():
                        raise RuntimeError(
                            "vector kernel stalled: active lanes with "
                            "no pending timers")
                    break

            # (3) releases: one per release-lane this iteration.
            if rel_any:
                w_rel = is_writer[pi]
                j = jnext[li0, pi]
                t_think = t_rel + think_tab[li0, pi,
                                            np.minimum(j, j_max)]
                jn1 = j + 1
                if all_busy:
                    # every lane releases: plain scatters, no masks
                    wheld[:] = False
                    nread -= ~w_rel
                    events += 1         # the think-end push
                    hold_wake[li0, pi] = _INF
                    lastm = jn1 == J
                    lastm_any = bool(lastm.any())
                    sleep_wake[li0, pi] = (
                        np.where(lastm, _INF, t_think) if lastm_any
                        else t_think)
                    jnext[li0, pi] = jn1
                    hold_next[li0, pi] = hold_tab[
                        li0, pi, np.minimum(jn1, j_max)]
                else:
                    wheld &= ~rel      # the holder left, whatever mode
                    nread -= rel & ~w_rel
                    events += rel      # the think-end push
                    hold_wake[li0, pi] = np.where(rel, _INF, t_rel)
                    lastm = rel & (jn1 == J)
                    lastm_any = bool(lastm.any())
                    np.copyto(sleep_wake, t_think[:, None],
                              where=(cols == pi[:, None])
                              & (rel & ~lastm)[:, None])
                    jnext[li0, pi] = j + rel
                    hold_next[li0, pi] = hold_tab[
                        li0, pi,
                        np.minimum(np.where(rel, jn1, j), j_max)]
                if lastm_any:
                    n_done += lastm
                    end_time = np.where(
                        lastm, np.maximum(end_time, t_think), end_time)
                    active = n_done < P
                    all_active = False

                # (4) grant wave: FCFS grants the longest compatible
                # queue prefix of every lane this release freed up —
                # every waiting reader that requested before the
                # earliest waiting writer (no writer key beats wrt, so
                # the comparison alone selects exactly the readers), or
                # the earliest writer alone once the readers drained.
                wave = rt < wrt[:, None]
                if not all_busy:
                    wave &= rel[:, None]
                counts = wave.sum(axis=1)
                w_go = (counts == 0) & (wrt < _INF) & (nread == 0)
                if not all_busy:
                    w_go &= rel
                gcounts = counts + w_go
                if gcounts.any():
                    grant = wave | ((cols == wpos[:, None])
                                    & w_go[:, None])
                    np.copyto(hold_wake, t_rel[:, None] + hold_next,
                              where=grant)
                    np.copyto(rt, _INF, where=grant)
                    np.copyto(rt_w, _INF, where=grant)
                    events += gcounts   # the resume pushes
                    events += gcounts   # the hold-end pushes
                    nwait -= gcounts
                    nread += counts
                    wheld |= w_go

            # (5) arrivals at an open lock (idle, or reader-held with
            # an empty queue): one per arrival-lane this iteration.
            # Such lanes always have an empty queue (a queue behind
            # current holders means a busy lane, whose arrivals were
            # absorbed above), so the scalar immediate-grant rule
            # reduces to a mode check: readers go, writers go iff no
            # readers hold.
            if arr_any:
                aw = is_writer[ai]
                blocked = arr & aw & (nread > 0)
                go = arr & ~blocked
                oh_a = cols == ai[:, None]
                np.copyto(sleep_wake, _INF, where=oh_a & arr[:, None])
                if blocked.any():
                    bm = oh_a & blocked[:, None]   # all blocked are W
                    np.copyto(rt, t_arr[:, None], where=bm)
                    np.copyto(rt_w, t_arr[:, None], where=bm)
                    nwait += blocked
                    # the queue was empty, so the new writer is the
                    # earliest one — keep wrt honest for step (6)
                    wrt = np.where(blocked, t_arr, wrt)
                if go.any():
                    np.copyto(hold_wake, t_arr[:, None] + hold_next,
                              where=oh_a & go[:, None])
                    events += go        # the hold-end push
                    wheld |= go & aw
                    nread += go & ~aw

            # (6) accumulator intervals: each event lane saw all its
            # state changes at one timestamp, so sampling the
            # predicates once per iteration is exact.  ``wrt`` may be
            # stale for lanes whose wave just granted the earliest
            # writer, but those lanes have ``wheld`` set, which
            # dominates the predicate.
            wp = wheld | (wrt < _INF)
            hp = wheld | (nread > 0)
            wp_flip = wp != wp_prev
            hp_flip = hp != hp_prev
            if wp_flip.any() or hp_flip.any():
                ev_t = t_rel if all_busy else np.where(rel, t_rel, t_arr)
                twp += np.where(wp_flip & ~wp, ev_t - wp_start, 0.0)
                np.copyto(wp_start, ev_t, where=wp_flip & wp)
                tha += np.where(hp_flip & ~hp, ev_t - hp_start, 0.0)
                np.copyto(hp_start, ev_t, where=hp_flip & hp)
                wp_prev = wp
                hp_prev = hp

        # Structural tallies: the loop above retires a lane only after
        # every process finished all J cycles, and each cycle is
        # granted exactly once, so the grant counts per mode and the
        # total writer-held time are fixed by the workload tables.
        n_writers = int(is_writer.sum())
        grants_write = np.full(L, n_writers * J, dtype=np.int64)
        grants_read = np.full(L, (P - n_writers) * J, dtype=np.int64)
        twh = (hold_tab[:, is_writer, :].sum(axis=(1, 2))
               if n_writers else np.zeros(L))

        return VectorRunStats(
            n_lanes=L, end_time=end_time, events=events,
            grants_read=grants_read, grants_write=grants_write,
            time_writer_held=twh, time_writer_present=twp,
            time_held_any=tha, iterations=iterations,
        )


def run_vectorized(spec: LockContentionSpec, n_lanes: int,
                   durations: Optional[Tuple[np.ndarray, np.ndarray]]
                   = None) -> VectorRunStats:
    """Run ``n_lanes`` replications of ``spec`` through the vector
    kernel and return the per-lane stats."""
    return VectorLockKernel(spec, n_lanes, durations=durations).run()


def run_scalar_reference(spec: LockContentionSpec, lane: int,
                         durations: Optional[Tuple[np.ndarray, np.ndarray]]
                         = None) -> LaneStats:
    """Replay lane ``lane`` of ``spec`` through the *scalar* kernel.

    This is the oracle: the real :class:`~repro.des.engine.Simulator`
    and :class:`~repro.des.rwlock.RWLock` execute the identical
    schedule, and the returned :class:`LaneStats` must match the
    vector kernel's lane bit-for-bit on times and counts.
    """
    from repro.des.engine import Simulator
    from repro.des.rwlock import RWLock

    if durations is not None:
        hold, think = durations
        hold_rows = hold[lane].tolist()
        think_rows = think[lane].tolist()
    else:
        hold_arr, think_arr = spec.durations(lane + 1)
        hold_rows = hold_arr[lane].tolist()
        think_rows = think_arr[lane].tolist()
    writers = spec.writer_mask().tolist()

    sim = Simulator()
    lock = RWLock(f"lane{lane}")

    def worker(i: int):
        acquire = lock.acquire_write if writers[i] else lock.acquire_read
        release = lock.release_cmd
        holds = hold_rows[i]
        thinks = think_rows[i]
        for j in range(spec.iterations):
            yield acquire
            yield holds[j]
            yield release
            yield thinks[j]

    for i in range(spec.n_procs):
        sim.spawn(worker(i))
    sim.run()
    lock.finalize(sim.now)
    return LaneStats(
        end_time=sim.now,
        events=sim._sequence,
        grants_read=lock.grants_read,
        grants_write=lock.grants_write,
        time_writer_held=lock.time_writer_held,
        time_writer_present=lock.time_writer_present,
        time_held_any=lock.time_held_any,
    )


def assert_equivalent(vector: VectorRunStats,
                      scalar: Sequence[LaneStats],
                      lanes: Optional[Sequence[int]] = None) -> None:
    """Assert the vector run reproduces the scalar lanes.

    End times, event counts and grant counts must match exactly (the
    kernels perform the same IEEE-754 additions in the same per-process
    order); the time-weighted accumulators are integrated at different
    breakpoints, so they are compared to float tolerance.
    """
    indices: List[int] = list(lanes) if lanes is not None \
        else list(range(len(scalar)))
    for offset, lane in enumerate(indices):
        ref = scalar[offset]
        got = vector.lane(lane)
        if (got.end_time != ref.end_time or got.events != ref.events
                or got.grants_read != ref.grants_read
                or got.grants_write != ref.grants_write):
            raise AssertionError(
                f"lane {lane} diverged from the scalar kernel: "
                f"vector={got} scalar={ref}")
        for field in ("time_writer_held", "time_writer_present",
                      "time_held_any"):
            a, b = getattr(got, field), getattr(ref, field)
            if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9):
                raise AssertionError(
                    f"lane {lane} accumulator {field} diverged: "
                    f"vector={a!r} scalar={b!r}")
