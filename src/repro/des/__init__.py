"""Discrete-event simulation engine.

This subpackage is a small, self-contained process-oriented discrete-event
simulation kernel in the style of SIMULA / SimPy, built specifically for the
concurrent B-tree simulator of Johnson & Shasha (PODS 1990, Section 4):

* :class:`~repro.des.engine.Simulator` — event heap, simulation clock and
  process scheduler.
* :class:`~repro.des.process.Process` and the yieldable commands
  :class:`~repro.des.process.Hold`, :class:`~repro.des.process.Acquire` —
  processes are plain Python generators that yield commands to the engine.
* :class:`~repro.des.rwlock.RWLock` — a first-come-first-served
  reader/writer lock queue: R locks are shared, W locks are exclusive and
  grants never overtake earlier requests (paper Section 3.2, "Lock types").
* :mod:`~repro.des.distributions` — exponential / hyperexponential /
  deterministic service-time samplers with exact moment accessors.
* :mod:`~repro.des.stats` — Welford accumulators and time-weighted
  statistics used for response times and lock utilizations.
* :mod:`~repro.des.vector` — a numpy struct-of-arrays batch kernel that
  advances N replications of the lock-contention workload per
  interpreted dispatch, bit-exactly matching this scalar engine (its
  oracle).  Deliberately **not** imported here: the rest of the
  subpackage stays numpy-free, so import it explicitly
  (``from repro.des import vector``) where batching is wanted.
* :mod:`~repro.des.vector_btree` — the same struct-of-arrays treatment
  for full B-tree search/insert descents (lock-coupling and optimistic
  protocols), again bit-exact against a scalar-oracle replay and again
  imported explicitly, never from here.
* :mod:`~repro.des.autotune` — the measured cost model behind
  ``batch="auto"``: a short probe fits per-dispatch overhead vs
  per-lane work, the calibration persists next to the result cache,
  and ``choose_width`` picks the batch width from it.
"""

from repro.des.distributions import (
    Deterministic,
    Exponential,
    Hyperexponential,
    UniformDist,
)
from repro.des.engine import Simulator
from repro.des.process import Acquire, Hold, Process, READ, Release, WRITE
from repro.des.rwlock import RWLock
from repro.des.stats import ReservoirSample, RunningStats, TimeWeightedStat
from repro.des.trace import TraceEvent, TraceLog

__all__ = [
    "Acquire",
    "Deterministic",
    "Exponential",
    "Hold",
    "Hyperexponential",
    "Process",
    "READ",
    "RWLock",
    "Release",
    "ReservoirSample",
    "RunningStats",
    "Simulator",
    "TimeWeightedStat",
    "TraceEvent",
    "TraceLog",
    "UniformDist",
    "WRITE",
]
