"""Measured cost model for the replication batch width (``batch="auto"``).

The lane-batched kernels (:mod:`repro.des.vector`,
:mod:`repro.des.vector_btree`) pay a fixed interpreter/numpy dispatch
cost per vector step plus a per-lane arithmetic cost, so batch wall
clock is well modeled by::

    T(B) = D * (a + b * B)

where ``B`` is the batch width, ``D`` the number of vector dispatches
(nearly width-independent — lanes advance in lockstep through the same
level structure), ``a`` the per-dispatch overhead and ``b`` the
marginal per-lane cost.  The scalar path runs the same schedule at a
measured ``c`` events/second.  Two short probe runs at different widths
solve for ``a`` and ``b`` exactly; the predicted speedup::

    speedup(B) = (B * E) / T(B) / c        # E = events per lane

then ranks candidate widths without ever hand-tuning the known
crossover (historically between batch 8 and 32).

:func:`calibrate` runs the probes, :func:`choose_width` picks the
width, and the calibration persists as ``autotune.json`` next to the
on-disk result cache so sweeps only pay the probe cost once per
machine.  ``run_batch(batch="auto")`` / CLI ``--batch auto`` resolve
through :func:`resolve_auto_width`.

The chosen width only changes *scheduling*: per-seed results and cache
keys are bit-identical at every width (the equivalence suites in
``tests/test_batch_replications.py`` and ``tests/test_vector_btree.py``
enforce this), so a stale or noisy calibration can cost wall clock but
never correctness.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.des.vector_btree import (
    PROTOCOLS,
    BTreeDescentSpec,
    run_btree_vectorized,
    run_scalar_btree_reference,
)

#: On-disk calibration format version.
CALIBRATION_SCHEMA = 1

#: File name of the persisted calibration (lives in the cache root).
CALIBRATION_FILENAME = "autotune.json"

#: Widths :func:`choose_width` ranks — powers of two spanning the
#: scalar/vector crossover up to the widths the bench exercises.
WIDTH_CANDIDATES: Tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024)

#: Default probe widths for the two-point fit.  Far enough apart that
#: the per-lane slope dominates measurement noise — and wide enough
#: that small-array numpy overhead has mostly amortized, since a slope
#: measured at narrow widths overstates the marginal lane cost and
#: makes the model too pessimistic about wide batches — while keeping
#: the probe around a second.
PROBE_WIDTHS: Tuple[int, int] = (32, 256)

#: Timing repetitions per probe point (best-of, like the benches).
PROBE_REPEATS = 3

#: Floor for fitted cost coefficients: probe noise can produce a
#: non-positive intercept or slope, which would predict unbounded
#: speedup; clamping keeps the model sane (and conservative).
_COST_FLOOR = 1e-9


def _fingerprint() -> Dict[str, object]:
    """What the calibration was measured on.  A mismatch (new machine,
    new interpreter) invalidates the persisted file."""
    return {
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


@dataclass(frozen=True)
class ProtocolCalibration:
    """Fitted cost model for one descent protocol."""

    protocol: str
    #: ``a`` — seconds of width-independent overhead per vector dispatch.
    overhead_per_dispatch: float
    #: ``b`` — marginal seconds per lane per vector dispatch.
    cost_per_lane_dispatch: float
    #: ``D`` — vector dispatches per batch (measured at the wide probe).
    dispatches: float
    #: ``E`` — scalar-equivalent events per lane.
    events_per_lane: float
    #: ``c`` — measured scalar-path events per second.
    scalar_events_per_sec: float

    def predicted_events_per_sec(self, width: int) -> float:
        """Modeled vector throughput at ``width`` lanes."""
        seconds = self.dispatches * (self.overhead_per_dispatch
                                     + self.cost_per_lane_dispatch * width)
        if seconds <= 0.0:
            return 0.0
        return width * self.events_per_lane / seconds

    def predicted_speedup(self, width: int) -> float:
        """Modeled vector/scalar throughput ratio at ``width`` lanes."""
        if self.scalar_events_per_sec <= 0.0:
            return 0.0
        return self.predicted_events_per_sec(width) \
            / self.scalar_events_per_sec


@dataclass(frozen=True)
class BatchCalibration:
    """One machine's measured batch cost model (all protocols)."""

    entries: Dict[str, ProtocolCalibration]
    probe_widths: Tuple[int, ...]
    fingerprint: Dict[str, object]
    generated_at: str
    schema: int = CALIBRATION_SCHEMA

    def speedup(self, width: int) -> float:
        """The conservative (minimum-across-protocols) predicted
        speedup at ``width``."""
        if not self.entries:
            return 0.0
        return min(entry.predicted_speedup(width)
                   for entry in self.entries.values())


def calibrate(spec: Optional[BTreeDescentSpec] = None,
              probe_widths: Sequence[int] = PROBE_WIDTHS,
              repeats: int = PROBE_REPEATS,
              ) -> BatchCalibration:
    """Measure the cost model with short probe runs.

    For each protocol: a scalar-oracle lane (``c`` and ``E``) plus a
    vector run per probe width; the two ``T(B)/D(B)`` points solve
    ``a`` and ``b``.  Every timing is best-of-``repeats`` (the first
    repetition doubles as the warm-up), and schedule-table generation
    is excluded from the timings on both sides — it is identical work
    either way.
    """
    if len(probe_widths) != 2 or probe_widths[0] >= probe_widths[1]:
        raise ValueError(
            f"need two increasing probe widths, got {tuple(probe_widths)}")
    base = spec if spec is not None else BTreeDescentSpec()
    b_lo, b_hi = int(probe_widths[0]), int(probe_widths[1])
    repeats = max(repeats, 1)
    entries: Dict[str, ProtocolCalibration] = {}
    for protocol in PROTOCOLS:
        probe = BTreeDescentSpec(
            protocol=protocol, levels=base.levels, order=base.order,
            n_procs=base.n_procs, iterations=base.iterations,
            insert_every=base.insert_every, seed=base.seed)

        scalar_tables = probe.tables(1)
        lane_stats = run_scalar_btree_reference(probe, 0,
                                                tables=scalar_tables)
        scalar_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            lane_stats = run_scalar_btree_reference(probe, 0,
                                                    tables=scalar_tables)
            scalar_seconds = min(scalar_seconds,
                                 time.perf_counter() - start)
        scalar_seconds = max(scalar_seconds, _COST_FLOOR)
        events_per_lane = float(lane_stats.events)
        scalar_rate = events_per_lane / scalar_seconds

        per_dispatch = []
        dispatches = 1.0
        for width in (b_lo, b_hi):
            tables = probe.tables(width)
            stats = run_btree_vectorized(probe, width, tables=tables)
            seconds = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                stats = run_btree_vectorized(probe, width, tables=tables)
                seconds = min(seconds, time.perf_counter() - start)
            seconds = max(seconds, _COST_FLOOR)
            dispatches = float(max(stats.dispatches, 1))
            per_dispatch.append(seconds / dispatches)

        slope = (per_dispatch[1] - per_dispatch[0]) / (b_hi - b_lo)
        slope = max(slope, _COST_FLOOR)
        intercept = max(per_dispatch[0] - slope * b_lo, _COST_FLOOR)
        entries[protocol] = ProtocolCalibration(
            protocol=protocol,
            overhead_per_dispatch=intercept,
            cost_per_lane_dispatch=slope,
            dispatches=dispatches,
            events_per_lane=events_per_lane,
            scalar_events_per_sec=scalar_rate,
        )
    return BatchCalibration(
        entries=entries,
        probe_widths=(b_lo, b_hi),
        fingerprint=_fingerprint(),
        generated_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )


def choose_width(calibration: BatchCalibration, n_tasks: int) -> int:
    """The calibrated batch width for a group of ``n_tasks``
    replications.

    Ranks :data:`WIDTH_CANDIDATES` (clamped to ``n_tasks`` — lanes
    beyond the task count would idle) by the conservative predicted
    speedup; falls back to the scalar path (width 1) when no candidate
    is predicted to beat it.
    """
    if n_tasks <= 1:
        return 1
    candidates = [width for width in WIDTH_CANDIDATES if width <= n_tasks]
    if not candidates:
        candidates = [n_tasks]
    best_width, best_speedup = 1, 1.0
    for width in candidates:
        speedup = calibration.speedup(width)
        if speedup > best_speedup:
            best_width, best_speedup = width, speedup
    return best_width


# ----------------------------------------------------------------------
# Persistence (next to the result cache)
# ----------------------------------------------------------------------
def calibration_path(cache=None) -> Path:
    """Where the calibration lives: the result cache's directory when
    one is installed, else the default cache root."""
    if cache is not None and getattr(cache, "directory", None) is not None:
        root = Path(cache.directory)
    else:
        from repro.parallel.cache import default_cache_dir
        root = default_cache_dir()
    return root / CALIBRATION_FILENAME


def save_calibration(calibration: BatchCalibration, path: Path) -> None:
    """Persist atomically (temp file + rename, like cache entries)."""
    payload = {
        "schema": calibration.schema,
        "generated_at": calibration.generated_at,
        "fingerprint": calibration.fingerprint,
        "probe_widths": list(calibration.probe_widths),
        "entries": {
            name: {
                "protocol": entry.protocol,
                "overhead_per_dispatch": entry.overhead_per_dispatch,
                "cost_per_lane_dispatch": entry.cost_per_lane_dispatch,
                "dispatches": entry.dispatches,
                "events_per_lane": entry.events_per_lane,
                "scalar_events_per_sec": entry.scalar_events_per_sec,
            }
            for name, entry in sorted(calibration.entries.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


def load_calibration(path: Path) -> Optional[BatchCalibration]:
    """The persisted calibration, or None when it is missing, corrupt,
    from another schema, or measured on a different machine (any of
    which means: re-probe)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) \
            or payload.get("schema") != CALIBRATION_SCHEMA \
            or payload.get("fingerprint") != _fingerprint():
        return None
    try:
        entries = {
            name: ProtocolCalibration(
                protocol=str(raw["protocol"]),
                overhead_per_dispatch=float(raw["overhead_per_dispatch"]),
                cost_per_lane_dispatch=float(raw["cost_per_lane_dispatch"]),
                dispatches=float(raw["dispatches"]),
                events_per_lane=float(raw["events_per_lane"]),
                scalar_events_per_sec=float(raw["scalar_events_per_sec"]),
            )
            for name, raw in payload["entries"].items()
        }
        probe_widths = tuple(int(w) for w in payload["probe_widths"])
    except (KeyError, TypeError, ValueError):
        return None
    if not entries:
        return None
    return BatchCalibration(
        entries=entries, probe_widths=probe_widths,
        fingerprint=payload["fingerprint"],
        generated_at=str(payload.get("generated_at", "")),
    )


def resolve_auto_width(n_tasks: int, cache=None) -> int:
    """The effective width for ``batch="auto"``.

    Loads the persisted calibration (probing and persisting one on
    first use — or whenever the machine fingerprint changed) and
    returns :func:`choose_width`.  Persistence is best-effort: on an
    unwritable cache directory the fresh calibration is still used,
    just not saved.
    """
    path = calibration_path(cache)
    calibration = load_calibration(path)
    if calibration is None:
        calibration = calibrate()
        try:
            save_calibration(calibration, path)
        except OSError:
            pass
    return choose_width(calibration, n_tasks)
