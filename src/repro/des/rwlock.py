"""First-come-first-served reader/writer lock.

This is the lock discipline assumed throughout the paper (Section 3.2,
"Lock types") and analysed in the appendix (the FCFS R/W queue of
Johnson's SIGMETRICS '90 paper):

* R (shared) locks may be held concurrently by any number of processes.
* W (exclusive) locks conflict with everything.
* Grants are strictly first-come, first-served: a request never overtakes
  an earlier one, so a compatible reader still waits behind a queued
  writer.

The lock keeps cheap per-lock accumulators of writer-held / writer-present
time so the simulator can report the writer utilization :math:`\\rho_w`
(paper Figure 10) without external instrumentation.  A maintained
queued-writer counter makes the writer-present check O(1) — the clock
advance on every request/release never scans the wait queue.

Each lock also interns one :class:`~repro.des.process.Acquire` per mode
and one :class:`~repro.des.process.Release` (:attr:`acquire_read` /
:attr:`acquire_write` / :attr:`release_cmd`); operation generators yield
those cached instances so the steady-state command stream allocates
nothing (see ``docs/performance.md``, "Kernel hot path").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set

from repro.des.engine import Simulator
from repro.des.process import (
    READ,
    WRITE,
    Acquire,
    LockRequest,
    Process,
    Release,
)
from repro.errors import LockProtocolError


class RWLock:
    """A FCFS shared/exclusive lock with queue-time accounting.

    Parameters
    ----------
    name:
        Label used in error messages (the simulator uses node ids).
    observer:
        Optional object with an ``on_wait(mode, wait)`` method, called on
        every grant with the request's queueing delay.  The concurrent
        B-tree simulator installs a per-level metrics collector here.

    The :attr:`telemetry` slot (normally None) may hold any object with
    integer ``held_read`` / ``held_write`` / ``queued`` /
    ``grants_read`` / ``grants_write`` attributes — in practice a
    :class:`~repro.obs.sampler.LevelState` shared by every lock of one
    tree level.  The lock keeps those live counts current so a periodic
    sampler can read per-level queue depth and R/W utilization without
    walking the tree.  With telemetry off the cost is a single
    attribute load + ``is None`` test per lock event.
    """

    __slots__ = (
        "name", "observer", "telemetry", "acquire_read", "acquire_write",
        "release_cmd", "_readers", "_writer", "_queue", "_queued_writers",
        "_last_change", "time_writer_held", "time_writer_present",
        "time_held_any", "grants_read", "grants_write",
    )

    def __init__(self, name: str = "", observer=None) -> None:
        self.name = name
        self.observer = observer
        self.telemetry = None
        #: Interned commands — yield these instead of allocating
        #: ``Acquire``/``Release`` objects per lock round trip.
        self.acquire_read = Acquire(self, READ)
        self.acquire_write = Acquire(self, WRITE)
        self.release_cmd = Release(self)
        self._readers: Set[Process] = set()
        self._writer: Optional[Process] = None
        self._queue: Deque[LockRequest] = deque()
        #: Number of W requests currently in :attr:`_queue`, maintained
        #: on enqueue/dequeue so :meth:`writer_waiting` and the clock
        #: advance are O(1).
        self._queued_writers: int = 0
        # Time-weighted accumulators, advanced lazily on state changes.
        self._last_change: float = 0.0
        #: Total time a writer has held the lock.
        self.time_writer_held: float = 0.0
        #: Total time a writer has been holding *or waiting* (the paper's
        #: rho_w is the probability that "a W lock is in the lock queue").
        self.time_writer_present: float = 0.0
        #: Total time the lock has been held in any mode.
        self.time_held_any: float = 0.0
        self.grants_read: int = 0
        self.grants_write: int = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def readers(self) -> frozenset:
        """Processes currently holding the lock in R mode."""
        return frozenset(self._readers)

    @property
    def writer(self) -> Optional[Process]:
        """The process holding the lock in W mode, if any."""
        return self._writer

    @property
    def queue_length(self) -> int:
        """Number of requests waiting in the queue."""
        return len(self._queue)

    def holds(self, process: Process) -> Optional[str]:
        """Return ``READ``/``WRITE`` if ``process`` holds the lock, else None."""
        if self._writer is process:
            return WRITE
        if process in self._readers:
            return READ
        return None

    def writer_waiting(self) -> bool:
        """True if any W request is queued (an O(1) counter read)."""
        return self._queued_writers > 0

    # ------------------------------------------------------------------
    # Request / release protocol
    # ------------------------------------------------------------------
    def request(self, sim: Simulator, process: Process, mode: str) -> bool:
        """Request the lock for ``process``.

        Returns True and grants immediately when the lock is free for
        ``mode`` and nobody is queued ahead; otherwise enqueues the request
        and returns False.  Queued processes are resumed by ``release``
        with their queueing delay as the sent value.
        """
        if self._writer is process or process in self._readers:
            raise LockProtocolError(
                f"{process.name} already holds lock {self.name!r}; "
                "re-entrant locking is not part of the protocol"
            )
        self._advance_clocks(sim.now)
        if not self._queue and self._writer is None \
                and (mode == READ or not self._readers):
            self._admit(process, mode)
            if self.observer is not None:
                self.observer.on_wait(mode, 0.0)
            return True
        self._queue.append(LockRequest(process, mode, sim.now))
        if mode == WRITE:
            self._queued_writers += 1
        tel = self.telemetry
        if tel is not None:
            tel.queued += 1
        return False

    def release(self, sim: Simulator, process: Process) -> None:
        """Release ``process``'s hold and hand the lock to queued waiters."""
        self._advance_clocks(sim.now)
        tel = self.telemetry
        if self._writer is process:
            self._writer = None
            if tel is not None:
                tel.held_write -= 1
        elif process in self._readers:
            self._readers.remove(process)
            if tel is not None:
                tel.held_read -= 1
        else:
            raise LockProtocolError(
                f"{process.name} released lock {self.name!r} without holding it"
            )
        self._dispatch(sim)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compatible(self, mode: str) -> bool:
        if mode == READ:
            return self._writer is None
        return self._writer is None and not self._readers

    def _admit(self, process: Process, mode: str) -> None:
        tel = self.telemetry
        if mode == READ:
            self._readers.add(process)
            self.grants_read += 1
            if tel is not None:
                tel.held_read += 1
                tel.grants_read += 1
        else:
            self._writer = process
            self.grants_write += 1
            if tel is not None:
                tel.held_write += 1
                tel.grants_write += 1

    def _dispatch(self, sim: Simulator) -> None:
        """Grant the longest compatible prefix of the wait queue."""
        queue = self._queue
        if not queue:
            return
        tel = self.telemetry
        observer = self.observer
        now = sim.now
        while queue:
            head = queue[0]
            mode = head.mode
            if self._writer is not None or (mode == WRITE and self._readers):
                break
            queue.popleft()
            if mode == WRITE:
                self._queued_writers -= 1
            if tel is not None:
                tel.queued -= 1
            self._admit(head.process, mode)
            head.granted_at = now
            wait = now - head.requested_at
            if observer is not None:
                observer.on_wait(mode, wait)
            sim.resume(head.process, wait)
            if mode == WRITE:
                # An exclusive grant blocks everything behind it.
                break

    def _advance_clocks(self, now: float) -> None:
        dt = now - self._last_change
        if dt > 0.0:
            if self._writer is not None:
                self.time_writer_held += dt
                self.time_writer_present += dt
                self.time_held_any += dt
            else:
                if self._queued_writers:
                    self.time_writer_present += dt
                if self._readers:
                    self.time_held_any += dt
        self._last_change = now

    def finalize(self, now: float) -> None:
        """Flush the time-weighted accumulators up to ``now``."""
        self._advance_clocks(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RWLock {self.name!r} readers={len(self._readers)} "
            f"writer={self._writer is not None} queued={len(self._queue)}>"
        )
