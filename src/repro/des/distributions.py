"""Service-time distributions with exact moment accessors.

The paper's simulator draws all service times from exponential
distributions and the analysis models lock-coupling service as a
hyperexponential (a probabilistic mixture of exponential stages, Figure 2).
Each distribution here exposes ``sample()`` plus exact ``mean`` and
``second_moment`` so tests can check sampled moments against closed forms
and the analytical code can reuse the same objects.

Samplers use :class:`random.Random` streams (one per distribution) rather
than numpy scalars: the simulator draws millions of scalars and
``Random.expovariate`` is several times faster for that access pattern.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from typing import Optional, Sequence

from repro.errors import ConfigurationError


class Distribution:
    """Interface for scalar non-negative random variates."""

    def sample(self) -> float:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def second_moment(self) -> float:
        raise NotImplementedError

    @property
    def variance(self) -> float:
        return self.second_moment - self.mean ** 2

    @property
    def scv(self) -> float:
        """Squared coefficient of variation (1.0 for exponential)."""
        if self.mean == 0.0:
            return 0.0
        return self.variance / self.mean ** 2


class Deterministic(Distribution):
    """A constant 'distribution'; useful for tests and ablations."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"negative service time {value}")
        self._value = float(value)

    def sample(self) -> float:
        return self._value

    @property
    def mean(self) -> float:
        return self._value

    @property
    def second_moment(self) -> float:
        return self._value ** 2

    def __repr__(self) -> str:
        return f"Deterministic({self._value})"


class Exponential(Distribution):
    """Exponential distribution parameterised by its *mean*."""

    def __init__(self, mean: float, rng: Optional[random.Random] = None) -> None:
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be positive, got {mean}")
        self._mean = float(mean)
        self._rng = rng if rng is not None else random.Random()

    def sample(self) -> float:
        return self._rng.expovariate(1.0 / self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def second_moment(self) -> float:
        return 2.0 * self._mean ** 2

    @property
    def rate(self) -> float:
        return 1.0 / self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class UniformDist(Distribution):
    """Uniform distribution on [low, high]; used in workload key pickers."""

    def __init__(self, low: float, high: float,
                 rng: Optional[random.Random] = None) -> None:
        if high < low:
            raise ConfigurationError(f"empty support [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)
        self._rng = rng if rng is not None else random.Random()

    def sample(self) -> float:
        return self._rng.uniform(self._low, self._high)

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    @property
    def second_moment(self) -> float:
        low, high = self._low, self._high
        return (high ** 3 - low ** 3) / (3.0 * (high - low)) if high > low \
            else low ** 2

    def __repr__(self) -> str:
        return f"UniformDist({self._low}, {self._high})"


class Hyperexponential(Distribution):
    """Probabilistic mixture of exponential stages.

    With probability ``probs[k]`` a sample is drawn from an exponential
    with mean ``means[k]``.  This is the service-time shape the analysis
    assigns to lock-coupling servers (paper Figure 2 and Theorem 3): the
    branching captures "the child might or might not be locked / full".
    """

    def __init__(self, probs: Sequence[float], means: Sequence[float],
                 rng: Optional[random.Random] = None) -> None:
        if len(probs) != len(means) or not probs:
            raise ConfigurationError("probs and means must be equal-length, non-empty")
        total = math.fsum(probs)
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ConfigurationError(f"branch probabilities sum to {total}, not 1")
        if any(p < 0 for p in probs):
            raise ConfigurationError("branch probabilities must be non-negative")
        if any(m <= 0 for m, p in zip(means, probs) if p > 0):
            raise ConfigurationError("stage means must be positive where reachable")
        self._probs = [float(p) for p in probs]
        self._means = [float(m) for m in means]
        self._rng = rng if rng is not None else random.Random()
        # Precompute the CDF for inverse-transform branch selection and
        # the per-stage rates (1/mean computed once, not per sample).
        self._cdf = []
        acc = 0.0
        for p in self._probs:
            acc += p
            self._cdf.append(acc)
        self._cdf[-1] = 1.0
        # Unreachable stages (p == 0) may carry any mean; rate 0.0 is a
        # placeholder that bisect can never select (ties resolve left).
        self._rates = [1.0 / m if m > 0 else 0.0 for m in self._means]

    def sample(self) -> float:
        # bisect_left finds the first threshold >= u — the same stage the
        # old linear walk selected, in O(log stages).  u < 1.0 == cdf[-1]
        # guarantees the index is in range.
        u = self._rng.random()
        return self._rng.expovariate(self._rates[bisect_left(self._cdf, u)])

    @property
    def mean(self) -> float:
        return math.fsum(p * m for p, m in zip(self._probs, self._means))

    @property
    def second_moment(self) -> float:
        # E[X^2] of an exponential stage with mean m is 2 m^2.
        return math.fsum(p * 2.0 * m * m for p, m in zip(self._probs, self._means))

    def __repr__(self) -> str:
        return f"Hyperexponential(probs={self._probs}, means={self._means})"


def poisson_interarrivals(rate: float, rng: random.Random):
    """Yield an endless stream of Poisson-process inter-arrival times."""
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    while True:
        yield rng.expovariate(rate)
