"""Process abstraction and the commands a process may yield.

A simulation *process* is a plain Python generator.  It advances the model
by yielding command objects to the engine:

* ``yield Hold(duration)`` — let simulated time pass (the process is doing
  timed work, e.g. searching a node or waiting for a disk read).
* ``yield Acquire(lock, mode)`` — request ``lock`` in ``READ`` or ``WRITE``
  mode; the process is resumed when the lock is granted.  The value sent
  back into the generator is the time spent waiting in the lock queue.

Releases are synchronous (``lock.release(process)``) because releasing
never blocks; any waiters that become grantable are woken through the
event heap at the current simulation time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ProcessError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking
    from repro.des.rwlock import RWLock

#: Shared lock mode (the paper's "R lock").
READ = "R"
#: Exclusive lock mode (the paper's "W lock").
WRITE = "W"

_process_ids = itertools.count(1)


@dataclass(frozen=True)
class Hold:
    """Command: consume ``duration`` units of simulated time."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ProcessError(f"cannot hold for negative time {self.duration}")


@dataclass(frozen=True)
class Release:
    """Command: release ``lock`` (held by the yielding process).

    Releasing never blocks; the engine performs it synchronously and
    immediately resumes the process, waking any queued waiters that
    become grantable at the current simulation time.
    """

    lock: "RWLock"


@dataclass(frozen=True)
class Acquire:
    """Command: request ``lock`` in ``mode`` (``READ`` or ``WRITE``).

    The engine resumes the process once the lock is granted and sends the
    queueing delay (grant time minus request time) back into the generator,
    so operations can account their waiting time exactly as the paper's
    simulator does.
    """

    lock: "RWLock"
    mode: str

    def __post_init__(self) -> None:
        if self.mode not in (READ, WRITE):
            raise ProcessError(f"unknown lock mode {self.mode!r}")


class Process:
    """A running simulation process wrapping a generator.

    Parameters
    ----------
    generator:
        The generator driving the process.  It must yield :class:`Hold`
        and :class:`Acquire` commands only.
    name:
        Optional human-readable label used in error messages and traces.
    """

    __slots__ = ("pid", "name", "generator", "done", "started_at",
                 "finished_at", "on_done", "pending_acquire")

    def __init__(self, generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.pid: int = next(_process_ids)
        self.name: str = name or f"proc-{self.pid}"
        self.generator = generator
        self.done: bool = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Optional callback ``fn(process)`` invoked when the process ends.
        self.on_done = None
        #: The Acquire the process is currently blocked on (trace support).
        self.pending_acquire = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} pid={self.pid} {state}>"


@dataclass
class LockRequest:
    """A pending request sitting in an :class:`~repro.des.rwlock.RWLock` queue."""

    process: Process
    mode: str
    requested_at: float
    granted_at: Optional[float] = None
    #: Set by the lock when the request is cancelled (not used by the
    #: B-tree algorithms, but part of the queue protocol).
    cancelled: bool = field(default=False)

    @property
    def wait(self) -> float:
        """Queueing delay; only meaningful once granted."""
        if self.granted_at is None:
            raise ProcessError("request has not been granted yet")
        return self.granted_at - self.requested_at
