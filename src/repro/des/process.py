"""Process abstraction and the commands a process may yield.

A simulation *process* is a plain Python generator.  It advances the model
by yielding command objects to the engine:

* ``yield Hold(duration)`` — let simulated time pass (the process is doing
  timed work, e.g. searching a node or waiting for a disk read).  On the
  hot path a process may equivalently yield the **bare float** duration;
  the engine treats a float exactly like ``Hold(float)`` but without
  allocating a command object.
* ``yield Acquire(lock, mode)`` — request ``lock`` in ``READ`` or ``WRITE``
  mode; the process is resumed when the lock is granted.  The value sent
  back into the generator is the time spent waiting in the lock queue.
* ``yield Release(lock)`` — release ``lock`` (held by the yielding
  process).  Releasing never blocks; the engine performs it synchronously
  and immediately resumes the process, waking any queued waiters that
  become grantable at the current simulation time.

Commands carry a class-level integer :attr:`kind` tag
(:data:`KIND_HOLD` / :data:`KIND_ACQUIRE` / :data:`KIND_RELEASE`) so the
engine dispatches on one integer compare instead of an ``isinstance``
chain.  ``Acquire`` and ``Release`` are immutable once built, so each
:class:`~repro.des.rwlock.RWLock` interns one instance per command
(``lock.acquire_read`` / ``lock.acquire_write`` / ``lock.release_cmd``)
and the operation generators yield those cached instances —
the steady-state command stream allocates nothing.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ProcessError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking
    from repro.des.rwlock import RWLock

#: Shared lock mode (the paper's "R lock").
READ = "R"
#: Exclusive lock mode (the paper's "W lock").
WRITE = "W"

#: Integer command tags dispatched on by the engine's step loop.
KIND_HOLD = 0
KIND_ACQUIRE = 1
KIND_RELEASE = 2

_process_ids = itertools.count(1)


class Hold:
    """Command: consume ``duration`` units of simulated time.

    Yielding the bare float ``duration`` is the allocation-free
    equivalent understood by the engine.
    """

    __slots__ = ("duration",)
    kind = KIND_HOLD

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ProcessError(f"cannot hold for negative time {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Hold(duration={self.duration!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hold) and other.duration == self.duration

    def __hash__(self) -> int:
        return hash((Hold, self.duration))


class Release:
    """Command: release ``lock`` (held by the yielding process).

    Prefer the interned ``lock.release_cmd`` instance on hot paths.
    """

    __slots__ = ("lock",)
    kind = KIND_RELEASE

    def __init__(self, lock: "RWLock") -> None:
        self.lock = lock

    def __repr__(self) -> str:
        return f"Release(lock={self.lock!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Release) and other.lock is self.lock

    def __hash__(self) -> int:
        return hash((Release, id(self.lock)))


class Acquire:
    """Command: request ``lock`` in ``mode`` (``READ`` or ``WRITE``).

    The engine resumes the process once the lock is granted and sends the
    queueing delay (grant time minus request time) back into the generator,
    so operations can account their waiting time exactly as the paper's
    simulator does.  Prefer the interned ``lock.acquire_read`` /
    ``lock.acquire_write`` instances on hot paths.
    """

    __slots__ = ("lock", "mode")
    kind = KIND_ACQUIRE

    def __init__(self, lock: "RWLock", mode: str) -> None:
        if mode not in (READ, WRITE):
            raise ProcessError(f"unknown lock mode {mode!r}")
        self.lock = lock
        self.mode = mode

    def __repr__(self) -> str:
        return f"Acquire(lock={self.lock!r}, mode={self.mode!r})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Acquire) and other.lock is self.lock
                and other.mode == self.mode)

    def __hash__(self) -> int:
        return hash((Acquire, id(self.lock), self.mode))


class Process:
    """A running simulation process wrapping a generator.

    Parameters
    ----------
    generator:
        The generator driving the process.  It must yield :class:`Hold`
        (or bare float) / :class:`Acquire` / :class:`Release` commands
        only.
    name:
        Optional human-readable label used in error messages and traces.
    """

    __slots__ = ("pid", "name", "generator", "done", "started_at",
                 "finished_at", "on_done", "pending_acquire")

    def __init__(self, generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.pid: int = next(_process_ids)
        self.name: str = name or f"proc-{self.pid}"
        self.generator = generator
        self.done: bool = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Optional callback ``fn(process)`` invoked when the process ends.
        self.on_done = None
        #: The Acquire the process is currently blocked on (trace support).
        self.pending_acquire = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} pid={self.pid} {state}>"


class LockRequest:
    """A pending request sitting in an :class:`~repro.des.rwlock.RWLock`
    queue.

    A plain slotted class (not a dataclass): one is allocated per
    *contended* request, which is exactly the saturation regime the
    kernel must stay cheap in.
    """

    __slots__ = ("process", "mode", "requested_at", "granted_at",
                 "cancelled")

    def __init__(self, process: Process, mode: str, requested_at: float,
                 granted_at: Optional[float] = None,
                 cancelled: bool = False) -> None:
        self.process = process
        self.mode = mode
        self.requested_at = requested_at
        self.granted_at = granted_at
        #: Set by the lock when the request is cancelled (not used by the
        #: B-tree algorithms, but part of the queue protocol).
        self.cancelled = cancelled

    @property
    def wait(self) -> float:
        """Queueing delay; only meaningful once granted."""
        if self.granted_at is None:
            raise ProcessError("request has not been granted yet")
        return self.granted_at - self.requested_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LockRequest(process={self.process!r}, mode={self.mode!r}, "
                f"requested_at={self.requested_at!r}, "
                f"granted_at={self.granted_at!r}, "
                f"cancelled={self.cancelled!r})")
