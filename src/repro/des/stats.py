"""Statistics collectors used by the simulator and experiment drivers.

* :class:`RunningStats` — numerically stable (Welford) accumulator for
  mean / variance / min / max plus a normal-approximation confidence
  interval; used for response times and lock waits.
* :class:`TimeWeightedStat` — integral of a piecewise-constant signal,
  used for utilizations and mean queue lengths.
* :func:`combine_runs` — pools the per-seed means of replicated runs the
  way the paper aggregates its five independent simulations per setting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


class RunningStats:
    """Welford accumulator for scalar observations."""

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n: int = 0
        self._mean: float = 0.0
        self._m2: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self.total: float = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self.n < 2:
            return math.nan
        return self._m2 / (self.n - 1)

    @property
    def stddev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-safe

    @property
    def stderr(self) -> float:
        if self.n < 2:
            return math.nan
        return self.stddev / math.sqrt(self.n)

    def ci95(self) -> tuple:
        """Normal-approximation 95% confidence interval for the mean."""
        if self.n < 2:
            return (math.nan, math.nan)
        half = 1.96 * self.stderr
        return (self._mean - half, self._mean + half)

    def __repr__(self) -> str:
        return f"RunningStats(n={self.n}, mean={self.mean:.6g})"


class TimeWeightedStat:
    """Time integral of a piecewise-constant signal.

    ``update(now, value)`` records that the signal has had value ``value``
    since the previous update.  ``mean(now)`` is the time average over the
    observation window.
    """

    __slots__ = ("_start", "_last_time", "_last_value", "_area")

    def __init__(self, start: float = 0.0, value: float = 0.0) -> None:
        self._start = start
        self._last_time = start
        self._last_value = value
        self._area = 0.0

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards in TimeWeightedStat")
        self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = value

    def mean(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return math.nan
        area = self._area + self._last_value * (now - self._last_time)
        return area / span

    @property
    def current(self) -> float:
        return self._last_value


class ReservoirSample:
    """Fixed-size uniform sample of a stream (Vitter's algorithm R).

    Keeps an unbiased sample of everything seen so far in O(capacity)
    memory, from which percentiles of simulated response times are
    estimated.  The internal RNG is self-seeded so results are
    deterministic for a given input sequence.
    """

    __slots__ = ("capacity", "_items", "_seen", "_rng")

    def __init__(self, capacity: int = 2_000, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        import random
        self.capacity = capacity
        self._items: list = []
        self._seen = 0
        self._rng = random.Random(seed)

    def add(self, x: float) -> None:
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(x)
            return
        j = self._rng.randrange(self._seen)
        if j < self.capacity:
            self._items[j] = x

    @property
    def n_seen(self) -> int:
        return self._seen

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100]) by linear interpolation."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._items:
            return math.nan
        ordered = sorted(self._items)
        if len(ordered) == 1:
            return ordered[0]
        position = (q / 100.0) * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def quantile_summary(self) -> dict:
        """The standard latency panel: p50 / p90 / p99."""
        return {"p50": self.percentile(50.0),
                "p90": self.percentile(90.0),
                "p99": self.percentile(99.0)}


@dataclass(frozen=True)
class RunSummary:
    """Mean and spread of a metric pooled over replicated runs."""

    mean: float
    stddev: float
    n_runs: int
    low: float
    high: float


def combine_runs(per_run_means: Sequence[float]) -> RunSummary:
    """Pool per-seed means, as the paper does over 5 seeds per setting."""
    if not per_run_means:
        raise ValueError("no runs to combine")
    acc = RunningStats()
    acc.extend(per_run_means)
    sd = acc.stddev
    return RunSummary(
        mean=acc.mean,
        stddev=0.0 if sd != sd else sd,
        n_runs=acc.n,
        low=acc.min,
        high=acc.max,
    )
