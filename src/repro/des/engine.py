"""The discrete-event simulation kernel.

:class:`Simulator` owns the simulation clock and a binary-heap event list.
Events are typed records ``(time, sequence, kind, a, b)`` interpreted
inline by :meth:`Simulator.run` — a process start, a process resume
carrying its send value, or a plain callable (the public
:meth:`~Simulator.schedule` API).  The sequence number makes the ordering
of simultaneous events deterministic (FIFO in scheduling order), which in
turn makes whole simulation runs reproducible for a fixed random seed;
because it is unique, heap comparisons never reach the payload fields.

Processes (see :mod:`repro.des.process`) communicate with the kernel by
yielding commands; the step loop dispatches on each command's integer
``kind`` tag (with a bare ``float`` understood as an allocation-free
Hold).  The kernel steps a process as far as it can without time passing
— e.g. a lock acquired without contention is granted immediately within
the same step — which keeps the event heap small and the simulator fast.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.des.process import (
    KIND_ACQUIRE,
    KIND_HOLD,
    KIND_RELEASE,
    Hold,
    Process,
)
from repro.errors import ProcessError, SimulationError

Action = Callable[[], None]

#: Heap-record kinds (slot 2 of every event tuple).
_EV_ACTION = 0   # a: zero-argument callable,   b: unused
_EV_START = 1    # a: Process to start,         b: unused
_EV_RESUME = 2   # a: Process to resume,        b: value to send

#: One scheduled event.
Event = Tuple[float, int, int, object, object]

# The step loop dispatches on literal ints for speed; pin them to the
# canonical constants so a drift in process.py cannot go unnoticed.
assert (KIND_HOLD, KIND_ACQUIRE, KIND_RELEASE) == (0, 1, 2)


class Simulator:
    """Event-driven simulation kernel.

    Typical use::

        sim = Simulator()

        def customer(lock):
            wait = yield lock.acquire_write
            yield 1.0                      # hold (bare-float shorthand)
            yield lock.release_cmd

        sim.spawn(customer(lock))
        sim.run()
    """

    def __init__(self, trace=None, instruments=None) -> None:
        self._now: float = 0.0
        self._heap: List[Event] = []
        self._sequence: int = 0
        self._active: int = 0
        self._total_spawned: int = 0
        self._stopped: bool = False
        #: Optional :class:`~repro.des.trace.TraceLog` recording every
        #: lifecycle/lock/hold event the kernel executes.
        self.trace = trace
        #: Optional :class:`~repro.obs.instruments.Instrumentation`
        #: registry.  When None (the default) the event loop runs the
        #: instrument-free fast path — disabled telemetry costs nothing
        #: per event; when set, :meth:`run` counts executed events under
        #: ``des.events`` and :meth:`spawn` under ``des.spawned``.
        self.instruments = instruments

    # ------------------------------------------------------------------
    # Clock and bookkeeping
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_processes(self) -> int:
        """Number of spawned processes that have not yet finished."""
        return self._active

    @property
    def total_spawned(self) -> int:
        """Number of processes spawned since construction."""
        return self._total_spawned

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or None when the heap is
        empty.  Lets an external scheduler (the lane-multiplexed batch
        driver, :mod:`repro.simulator.batch`) advance several
        independent simulators in frontier-synchronized rounds without
        executing anything."""
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Action) -> None:
        """Run ``action`` after ``delay`` units of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self._now + delay, self._sequence, _EV_ACTION,
                        action, None))

    def schedule_at(self, time: float, action: Action) -> None:
        """Run ``action`` at absolute simulation time ``time``."""
        self.schedule(time - self._now, action)

    def spawn(self, generator, name: str = "",
              on_done: Optional[Callable[[Process], None]] = None,
              delay: float = 0.0) -> Process:
        """Create a process from ``generator`` and start it after ``delay``.

        Returns the :class:`Process` handle.  ``on_done`` is invoked with
        the process when its generator finishes.
        """
        process = Process(generator, name=name)
        process.on_done = on_done
        self._active += 1
        self._total_spawned += 1
        if self.instruments is not None:
            self.instruments.counter("des.spawned").inc()
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self._now + delay, self._sequence, _EV_START,
                        process, None))
        return process

    def resume(self, process: Process, value=None, delay: float = 0.0) -> None:
        """Schedule ``process`` to be resumed with ``value`` after ``delay``.

        Used by synchronisation objects (locks) to wake waiters.  A typed
        heap record — no closure is allocated.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self._now + delay, self._sequence, _EV_RESUME,
                        process, value))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> float:
        """Drain the event heap.

        Parameters
        ----------
        until:
            If given, stop once the next event is later than ``until`` and
            advance the clock to exactly ``until``.
        stop_when:
            Optional predicate checked after every event; the run stops as
            soon as it returns True (used e.g. to stop after N measured
            operations).

        Returns the simulation time at which the run stopped.
        """
        if self.instruments is not None:
            return self._run_instrumented(until, stop_when)
        self._stopped = False
        # Local bindings: this loop executes once per event and the
        # attribute/global lookups are measurable at sweep scale.
        heap = self._heap
        heappop = heapq.heappop
        step = self._step
        while heap:
            event = heap[0]
            time = event[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heappop(heap)
            self._now = time
            kind = event[2]
            if kind == _EV_RESUME:
                step(event[3], event[4])
            elif kind == _EV_START:
                self._start(event[3])
            else:
                event[3]()
            if self._stopped or (stop_when is not None and stop_when()):
                return self._now
        if until is not None:
            self._now = until
        return self._now

    def _run_instrumented(self, until: Optional[float],
                          stop_when: Optional[Callable[[], bool]]) -> float:
        """The :meth:`run` loop with the ``des.events`` counter live.

        A separate loop (rather than an ``if`` per event) so that runs
        without instrumentation keep the untouched fast path.
        """
        events = self.instruments.counter("des.events")
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        step = self._step
        while heap:
            event = heap[0]
            time = event[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heappop(heap)
            self._now = time
            events.inc()
            kind = event[2]
            if kind == _EV_RESUME:
                step(event[3], event[4])
            elif kind == _EV_START:
                self._start(event[3])
            else:
                event[3]()
            if self._stopped or (stop_when is not None and stop_when()):
                return self._now
        if until is not None:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Process stepping
    # ------------------------------------------------------------------
    def _start(self, process: Process) -> None:
        """First step of a spawned process (the ``_EV_START`` record)."""
        process.started_at = self._now
        if self.trace is not None:
            self.trace.record(self._now, "spawn", process.pid, process.name)
        self._step(process, None)

    def _step(self, process: Process, send_value) -> None:
        """Advance ``process`` until it blocks, holds, or finishes."""
        if process.done:
            raise ProcessError(f"{process!r} resumed after completion")
        if self.trace is not None:
            self._step_traced(process, send_value)
            return
        # Hot path: the trace check is hoisted out of the command loop
        # entirely (tracing is off for every production sweep), the heap
        # push for holds is inlined, and commands dispatch on a bare
        # float check plus one integer ``kind`` compare.
        send = process.generator.send
        heap = self._heap
        heappush = heapq.heappush
        now = self._now  # the clock cannot advance within a step
        while True:
            try:
                command = send(send_value)
            except StopIteration:
                self._finish(process)
                return
            if command.__class__ is float:
                if command > 0.0:
                    self._sequence = seq = self._sequence + 1
                    heappush(heap, (now + command, seq, _EV_RESUME,
                                    process, None))
                    return
                if command == 0.0:
                    send_value = None
                    continue
                raise ProcessError(
                    f"{process!r} held for negative time {command!r}")
            try:
                kind = command.kind
            except AttributeError:
                self._step_other(process, command)  # int holds
                return
            if kind == 1:  # acquire
                if command.lock.request(self, process, command.mode):
                    send_value = 0.0
                    continue
                return  # the lock will resume us with the wait time
            if kind == 2:  # release
                command.lock.release(self, process)
                send_value = None
                continue
            if kind == 0:  # Hold instance (validated non-negative)
                duration = command.duration
                if duration > 0.0:
                    self._sequence = seq = self._sequence + 1
                    heappush(heap, (now + duration, seq, _EV_RESUME,
                                    process, None))
                    return
                send_value = None
                continue
            raise ProcessError(
                f"{process!r} yielded unsupported command {command!r}"
            )

    def _step_other(self, process: Process, command) -> None:
        """Slow-path commands: integer holds and protocol errors."""
        if isinstance(command, (int, float)) and not isinstance(command, bool):
            if command < 0:
                raise ProcessError(
                    f"{process!r} held for negative time {command!r}")
            self.resume(process, None, delay=float(command))
            return
        raise ProcessError(
            f"{process!r} yielded unsupported command {command!r}"
        )

    def _step_traced(self, process: Process, send_value) -> None:
        """The :meth:`_step` loop with per-command trace records."""
        trace = self.trace
        if process.pending_acquire is not None:
            pending = process.pending_acquire
            process.pending_acquire = None
            trace.record(self._now, "grant", process.pid, process.name,
                         f"{pending.mode} {pending.lock.name} "
                         f"after {send_value:.4f}")
        while True:
            try:
                command = process.generator.send(send_value)
            except StopIteration:
                self._finish(process)
                return
            if command.__class__ is float:
                command = Hold(command)
            kind = getattr(command, "kind", None)
            if kind == KIND_HOLD:
                trace.record(self._now, "hold", process.pid,
                             process.name, f"{command.duration:.4f}")
                if command.duration == 0.0:
                    send_value = None
                    continue
                self.resume(process, None, delay=command.duration)
                return
            if kind == KIND_RELEASE:
                trace.record(self._now, "release", process.pid,
                             process.name, command.lock.name)
                command.lock.release(self, process)
                send_value = None
                continue
            if kind == KIND_ACQUIRE:
                trace.record(self._now, "request", process.pid,
                             process.name,
                             f"{command.mode} {command.lock.name}")
                granted = command.lock.request(self, process, command.mode)
                if granted:
                    # No contention: the wait is zero and the process
                    # continues within this same step.
                    trace.record(self._now, "grant", process.pid,
                                 process.name,
                                 f"{command.mode} {command.lock.name} "
                                 "immediately")
                    send_value = 0.0
                    continue
                process.pending_acquire = command
                return  # the lock will resume us with the wait time
            if isinstance(command, (int, float)) \
                    and not isinstance(command, bool):
                command = Hold(float(command))
                trace.record(self._now, "hold", process.pid,
                             process.name, f"{command.duration:.4f}")
                if command.duration == 0.0:
                    send_value = None
                    continue
                self.resume(process, None, delay=command.duration)
                return
            raise ProcessError(
                f"{process!r} yielded unsupported command {command!r}"
            )

    def _finish(self, process: Process) -> None:
        process.done = True
        process.finished_at = self._now
        if self.trace is not None:
            self.trace.record(self._now, "finish", process.pid,
                              process.name)
        self._active -= 1
        if process.on_done is not None:
            process.on_done(process)
